#include "pipeline/pipeline.h"

#include <gtest/gtest.h>

#include <set>

#include "eval/experiment.h"
#include "pipeline/factcrawl_pipeline.h"
#include "test_util.h"

namespace ie {
namespace {

PipelineConfig BaseConfig(RankerKind ranker, UpdateKind update,
                          uint64_t seed) {
  PipelineConfig config = PipelineConfig::Defaults(
      ranker, SamplerKind::kSRS, update, seed);
  config.sample_size = 120;
  return config;
}

// Invariants every full-access run must satisfy.
void CheckRunInvariants(const PipelineResult& result,
                        const SharedContext& context) {
  EXPECT_EQ(result.processing_order.size(), context.pool->size());
  EXPECT_EQ(result.processed_useful.size(), result.processing_order.size());

  // Every pool document processed exactly once.
  const std::set<DocId> pool_set(context.pool->begin(),
                                 context.pool->end());
  std::set<DocId> processed;
  for (DocId id : result.processing_order) {
    EXPECT_TRUE(pool_set.count(id) > 0);
    EXPECT_TRUE(processed.insert(id).second) << "processed twice: " << id;
  }

  // Verdicts match the cached outcomes.
  for (size_t i = 0; i < result.processing_order.size(); ++i) {
    EXPECT_EQ(result.processed_useful[i] != 0,
              context.outcomes->useful(result.processing_order[i]));
  }

  // Simulated cost: one charge per processed document.
  EXPECT_NEAR(result.extraction_seconds,
              context.relation->extraction_cost_seconds *
                  static_cast<double>(result.processing_order.size()),
              1e-6);

  // Update positions are strictly increasing and within range.
  for (size_t i = 1; i < result.update_positions.size(); ++i) {
    EXPECT_GT(result.update_positions[i], result.update_positions[i - 1]);
  }
  if (!result.update_positions.empty()) {
    EXPECT_LE(result.update_positions.back(),
              result.processing_order.size());
  }

  EXPECT_EQ(result.pool_useful,
            context.outcomes->CountUseful(*context.pool));
}

class PipelineRankerTest : public ::testing::TestWithParam<RankerKind> {};

TEST_P(PipelineRankerTest, FullAccessRunInvariants) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const PipelineResult result = AdaptiveExtractionPipeline::Run(
      context, BaseConfig(GetParam(), UpdateKind::kNone, 11));
  CheckRunInvariants(result, context);
}

INSTANTIATE_TEST_SUITE_P(AllRankers, PipelineRankerTest,
                         ::testing::Values(RankerKind::kRandom,
                                           RankerKind::kPerfect,
                                           RankerKind::kBAggIE,
                                           RankerKind::kRSVMIE));

class PipelineDetectorTest : public ::testing::TestWithParam<UpdateKind> {};

TEST_P(PipelineDetectorTest, AdaptiveRunInvariants) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const PipelineResult result = AdaptiveExtractionPipeline::Run(
      context, BaseConfig(RankerKind::kRSVMIE, GetParam(), 13));
  CheckRunInvariants(result, context);
  if (GetParam() == UpdateKind::kWindF) {
    EXPECT_GT(result.NumUpdates(), 10u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllDetectors, PipelineDetectorTest,
                         ::testing::Values(UpdateKind::kWindF,
                                           UpdateKind::kFeatS,
                                           UpdateKind::kTopK,
                                           UpdateKind::kModC));

TEST(PipelineTest, DeterministicForSeed) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const PipelineConfig config =
      BaseConfig(RankerKind::kRSVMIE, UpdateKind::kModC, 17);
  const PipelineResult a = AdaptiveExtractionPipeline::Run(context, config);
  const PipelineResult b = AdaptiveExtractionPipeline::Run(context, config);
  EXPECT_EQ(a.processing_order, b.processing_order);
  EXPECT_EQ(a.update_positions, b.update_positions);
}

TEST(PipelineTest, SeedChangesSampleOrder) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const PipelineResult a = AdaptiveExtractionPipeline::Run(
      context, BaseConfig(RankerKind::kRandom, UpdateKind::kNone, 1));
  const PipelineResult b = AdaptiveExtractionPipeline::Run(
      context, BaseConfig(RankerKind::kRandom, UpdateKind::kNone, 2));
  EXPECT_NE(a.processing_order, b.processing_order);
}

TEST(PipelineTest, PerfectBeatsRandomWhichIsNearChance) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCareer);
  const RunMetrics perfect = EvaluateRun(AdaptiveExtractionPipeline::Run(
      context, BaseConfig(RankerKind::kPerfect, UpdateKind::kNone, 19)));
  const RunMetrics random = EvaluateRun(AdaptiveExtractionPipeline::Run(
      context, BaseConfig(RankerKind::kRandom, UpdateKind::kNone, 19)));
  EXPECT_GT(perfect.auc, 0.99);
  EXPECT_NEAR(random.auc, 0.5, 0.06);
}

TEST(PipelineTest, LearnedRankerBeatsRandom) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const RunMetrics learned = EvaluateRun(AdaptiveExtractionPipeline::Run(
      context, BaseConfig(RankerKind::kRSVMIE, UpdateKind::kNone, 23)));
  EXPECT_GT(learned.auc, 0.7);
}

TEST(PipelineTest, AdaptiveAtLeastMatchesBase) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  double base_auc = 0.0, adaptive_auc = 0.0;
  for (uint64_t seed : {29, 31, 37}) {
    base_auc += EvaluateRun(AdaptiveExtractionPipeline::Run(
                                context, BaseConfig(RankerKind::kRSVMIE,
                                                    UpdateKind::kNone, seed)))
                    .auc;
    adaptive_auc +=
        EvaluateRun(AdaptiveExtractionPipeline::Run(
                        context, BaseConfig(RankerKind::kRSVMIE,
                                            UpdateKind::kModC, seed)))
            .auc;
  }
  EXPECT_GE(adaptive_auc, base_auc - 0.05);
}

TEST(PipelineTest, ModelUpdatesActuallyFire) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const PipelineResult result = AdaptiveExtractionPipeline::Run(
      context, BaseConfig(RankerKind::kRSVMIE, UpdateKind::kModC, 41));
  EXPECT_GT(result.NumUpdates(), 0u);
  EXPECT_EQ(result.features_added_per_update.size(), result.NumUpdates());
  EXPECT_GT(result.final_model_features, 10u);
}

TEST(PipelineTest, CqsSamplingRuns) {
  SharedContext context = test::MakeSharedContext(RelationId::kPersonCharge);
  const std::vector<std::string> queries = {"courtroom", "trial", "fraud",
                                            "prosecutor"};
  context.cqs_queries = &queries;
  PipelineConfig config = BaseConfig(RankerKind::kRSVMIE,
                                     UpdateKind::kNone, 43);
  config.sampler = SamplerKind::kCQS;
  const PipelineResult result =
      AdaptiveExtractionPipeline::Run(context, config);
  CheckRunInvariants(result, context);
}

TEST(PipelineTest, SearchInterfaceAccessCoversPool) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  PipelineConfig config =
      BaseConfig(RankerKind::kRSVMIE, UpdateKind::kModC, 47);
  config.access = AccessMode::kSearchInterface;
  const PipelineResult result =
      AdaptiveExtractionPipeline::Run(context, config);
  CheckRunInvariants(result, context);
}

TEST(PipelineTest, OverheadAccountingNonNegative) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const PipelineResult result = AdaptiveExtractionPipeline::Run(
      context, BaseConfig(RankerKind::kRSVMIE, UpdateKind::kTopK, 53));
  EXPECT_GT(result.ranking_cpu_seconds, 0.0);
  EXPECT_GT(result.detector_cpu_seconds, 0.0);
  EXPECT_GT(result.TotalSeconds(), result.extraction_seconds);
}

// ---- FactCrawl pipelines ---------------------------------------------------

TEST(FactCrawlPipelineTest, FcRunInvariants) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  FactCrawlConfig config;
  config.sample_size = 120;
  config.seed = 59;
  const PipelineResult result = FactCrawlPipeline::Run(context, config);
  CheckRunInvariants(result, context);
  EXPECT_EQ(result.NumUpdates(), 0u);  // FC never re-ranks
  EXPECT_GE(result.warmup_documents, 120u);  // sample + query evaluation
}

TEST(FactCrawlPipelineTest, AdaptiveFcReranks) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  FactCrawlConfig config;
  config.adaptive = true;
  config.sample_size = 120;
  config.rerank_interval = 150;
  config.seed = 61;
  const PipelineResult result = FactCrawlPipeline::Run(context, config);
  CheckRunInvariants(result, context);
  EXPECT_GT(result.NumUpdates(), 0u);
}

TEST(FactCrawlPipelineTest, FcBeatsRandomOnTopicalRelation) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  FactCrawlConfig config;
  config.sample_size = 120;
  config.seed = 67;
  // The shared test pool is small; give FC paper-like absolute retrieval
  // depth instead of the pool-proportional auto depth.
  config.factcrawl.retrieved_per_query = 200;
  const RunMetrics fc = EvaluateRun(FactCrawlPipeline::Run(context, config));
  EXPECT_GT(fc.auc, 0.6);
}

}  // namespace
}  // namespace ie
