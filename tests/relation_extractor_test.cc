#include "extract/relation_extractor.h"

#include <gtest/gtest.h>

#include "extract/extraction_system.h"
#include "test_util.h"
#include "text/tokenizer.h"

namespace ie {
namespace {

class CandidateTest : public ::testing::Test {
 protected:
  Document Doc(const std::string& text) {
    return TextToDocument(0, text, vocab_);
  }
  EntityMention Mention(uint32_t sentence, uint32_t begin, uint32_t end,
                        EntityType type, const std::string& value) {
    return {sentence, begin, end, type, value};
  }
  Vocabulary vocab_;
};

TEST_F(CandidateTest, PairsSameSentenceOnly) {
  const Document doc = Doc("cholera struck. in march 1994 it ended.");
  const std::vector<EntityMention> mentions = {
      Mention(0, 0, 1, EntityType::kDisease, "cholera"),
      Mention(1, 1, 3, EntityType::kTemporal, "march 1994")};
  EXPECT_TRUE(EnumerateCandidates(doc, mentions, EntityType::kDisease,
                                  EntityType::kTemporal)
                  .empty());
}

TEST_F(CandidateTest, PairsWithinSentence) {
  const Document doc = Doc("cholera cases surged in march 1994 there.");
  const std::vector<EntityMention> mentions = {
      Mention(0, 0, 1, EntityType::kDisease, "cholera"),
      Mention(0, 4, 6, EntityType::kTemporal, "march 1994")};
  const auto candidates = EnumerateCandidates(
      doc, mentions, EntityType::kDisease, EntityType::kTemporal);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0].attr1.value, "cholera");
  EXPECT_EQ(candidates[0].attr2.value, "march 1994");
}

TEST_F(CandidateTest, CrossProductOfMultipleMentions) {
  const Document doc = Doc("a b c d e f g h.");
  const std::vector<EntityMention> mentions = {
      Mention(0, 0, 1, EntityType::kPerson, "a"),
      Mention(0, 2, 3, EntityType::kPerson, "c"),
      Mention(0, 4, 5, EntityType::kCareer, "e"),
      Mention(0, 6, 7, EntityType::kCareer, "g")};
  EXPECT_EQ(EnumerateCandidates(doc, mentions, EntityType::kPerson,
                                EntityType::kCareer)
                .size(),
            4u);
}

TEST_F(CandidateTest, SameSpanNotPairedWithItself) {
  const Document doc = Doc("alpha beta.");
  const std::vector<EntityMention> mentions = {
      Mention(0, 0, 1, EntityType::kPerson, "alpha")};
  EXPECT_TRUE(EnumerateCandidates(doc, mentions, EntityType::kPerson,
                                  EntityType::kPerson)
                  .empty());
}

TEST_F(CandidateTest, DistanceExtractorThresholds) {
  const Document doc = Doc("cholera w w w w in march 1994.");
  const std::vector<EntityMention> mentions = {
      Mention(0, 0, 1, EntityType::kDisease, "cholera"),
      Mention(0, 6, 8, EntityType::kTemporal, "march 1994")};
  const auto candidates = EnumerateCandidates(
      doc, mentions, EntityType::kDisease, EntityType::kTemporal);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_FALSE(DistanceRelationExtractor(4).Accept(candidates[0]));
  EXPECT_TRUE(DistanceRelationExtractor(5).Accept(candidates[0]));
}

TEST_F(CandidateTest, LabelCandidatesAgainstGold) {
  const Document doc = Doc("maria lopez joined acme corporation now.");
  const std::vector<EntityMention> mentions = {
      Mention(0, 0, 2, EntityType::kPerson, "maria lopez"),
      Mention(0, 3, 5, EntityType::kOrganization, "acme corporation")};
  const auto candidates = EnumerateCandidates(
      doc, mentions, EntityType::kPerson, EntityType::kOrganization);
  ASSERT_EQ(candidates.size(), 1u);

  DocAnnotations with_gold;
  with_gold.tuples.push_back({RelationId::kPersonOrganization, "maria lopez",
                              "acme corporation", 0});
  EXPECT_EQ(LabelCandidates(candidates, with_gold,
                            RelationId::kPersonOrganization)[0],
            1);
  DocAnnotations without_gold;
  EXPECT_EQ(LabelCandidates(candidates, without_gold,
                            RelationId::kPersonOrganization)[0],
            -1);
  // A tuple in a different sentence does not label this candidate.
  DocAnnotations other_sentence;
  other_sentence.tuples.push_back({RelationId::kPersonOrganization,
                                   "maria lopez", "acme corporation", 3});
  EXPECT_EQ(LabelCandidates(candidates, other_sentence,
                            RelationId::kPersonOrganization)[0],
            -1);
}

// ---- Subsequence kernel -----------------------------------------------------

class SubseqKernelTest : public ::testing::Test {
 protected:
  std::vector<TokenId> Seq(const std::string& words) {
    std::vector<TokenId> ids;
    for (const auto& w : TokenizeWords(words)) ids.push_back(vocab_.Intern(w));
    return ids;
  }
  Vocabulary vocab_;
  SubsequenceKernelRelationExtractor extractor_;
};

TEST_F(SubseqKernelTest, NormalizedSelfSimilarityIsOne) {
  EXPECT_NEAR(extractor_.NormalizedKernel(Seq("was charged with fraud"),
                                          Seq("was charged with fraud")),
              1.0, 1e-9);
}

TEST_F(SubseqKernelTest, SymmetricAndBounded) {
  const auto a = Seq("was charged with serious fraud");
  const auto b = Seq("was indicted for fraud");
  const double kab = extractor_.NormalizedKernel(a, b);
  EXPECT_NEAR(kab, extractor_.NormalizedKernel(b, a), 1e-12);
  EXPECT_GE(kab, 0.0);
  EXPECT_LE(kab, 1.0 + 1e-9);
}

TEST_F(SubseqKernelTest, SharedSubsequencesScoreHigher) {
  const auto anchor = Seq("was charged with fraud");
  const double similar =
      extractor_.NormalizedKernel(anchor, Seq("was charged with arson"));
  const double unrelated =
      extractor_.NormalizedKernel(anchor, Seq("visited the lovely museum"));
  EXPECT_GT(similar, unrelated);
}

TEST_F(SubseqKernelTest, GapsAreDiscounted) {
  const auto anchor = Seq("charged with");
  const double adjacent =
      extractor_.NormalizedKernel(anchor, Seq("charged with"));
  const double gapped =
      extractor_.NormalizedKernel(anchor, Seq("charged quietly with"));
  EXPECT_GT(adjacent, gapped);
  EXPECT_GT(gapped, 0.0);
}

TEST_F(SubseqKernelTest, EmptySequenceIsZero) {
  EXPECT_DOUBLE_EQ(extractor_.NormalizedKernel({}, Seq("anything")), 0.0);
}

// ---- End-to-end extraction-system quality over every relation -------------

class ExtractionSystemQualityTest
    : public ::testing::TestWithParam<size_t> {};

TEST_P(ExtractionSystemQualityTest, DocumentLevelQuality) {
  const RelationSpec& spec = AllRelations()[GetParam()];
  const ExtractionOutcomes& outcomes = test::SharedOutcomes(spec.id);
  const Corpus& corpus = test::SharedCorpus();

  size_t tp = 0, fp = 0, fn = 0;
  for (DocId id : corpus.splits().test) {
    const bool gold = corpus.annotations(id).HasTupleFor(spec.id);
    const bool predicted = outcomes.useful(id);
    tp += gold && predicted;
    fp += !gold && predicted;
    fn += gold && !predicted;
  }
  if (tp + fn == 0) GTEST_SKIP() << "no gold-useful docs at this scale";
  const double recall = static_cast<double>(tp) / (tp + fn);
  const double precision =
      tp + fp > 0 ? static_cast<double>(tp) / (tp + fp) : 1.0;
  EXPECT_GT(recall, 0.75) << spec.code;
  EXPECT_GT(precision, 0.6) << spec.code;
}

TEST_P(ExtractionSystemQualityTest, ExtractedTuplesHaveCorrectRelation) {
  const RelationSpec& spec = AllRelations()[GetParam()];
  const ExtractionOutcomes& outcomes = test::SharedOutcomes(spec.id);
  const Corpus& corpus = test::SharedCorpus();
  size_t checked = 0;
  for (DocId id = 0; id < corpus.size() && checked < 50; ++id) {
    for (const ExtractedTuple& t : outcomes.tuples(id)) {
      EXPECT_EQ(t.relation, spec.id);
      EXPECT_FALSE(t.attr1.empty());
      EXPECT_FALSE(t.attr2.empty());
      ++checked;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllRelations, ExtractionSystemQualityTest,
                         ::testing::Range<size_t>(0, kNumRelations));

TEST(ExtractionSystemTest, ProcessIsDeterministic) {
  const ExtractionSystem& system =
      test::SharedSystem(RelationId::kPersonCharge);
  const Corpus& corpus = test::SharedCorpus();
  for (DocId id = 0; id < 20; ++id) {
    const auto first = system.Process(corpus.doc(id));
    const auto second = system.Process(corpus.doc(id));
    ASSERT_EQ(first.size(), second.size());
    for (size_t i = 0; i < first.size(); ++i) {
      EXPECT_TRUE(first[i] == second[i]);
    }
  }
}

TEST(ExtractionOutcomesTest, UsefulMatchesTuplePresence) {
  const ExtractionOutcomes& outcomes =
      test::SharedOutcomes(RelationId::kPersonCareer);
  for (DocId id = 0; id < 200; ++id) {
    EXPECT_EQ(outcomes.useful(id), !outcomes.tuples(id).empty());
  }
}

TEST(ExtractionOutcomesTest, AttributeValuesAreDistinct) {
  const ExtractionOutcomes& outcomes =
      test::SharedOutcomes(RelationId::kPersonCareer);
  const Corpus& corpus = test::SharedCorpus();
  for (DocId id = 0; id < corpus.size(); ++id) {
    if (!outcomes.useful(id)) continue;
    const auto values = outcomes.AttributeValues(id);
    EXPECT_FALSE(values.empty());
    std::set<std::string> unique(values.begin(), values.end());
    EXPECT_EQ(unique.size(), values.size());
    break;
  }
}

TEST(ExtractionOutcomesTest, CountUsefulSums) {
  const ExtractionOutcomes& outcomes =
      test::SharedOutcomes(RelationId::kPersonCareer);
  const Corpus& corpus = test::SharedCorpus();
  size_t manual = 0;
  for (DocId id : corpus.splits().test) manual += outcomes.useful(id);
  EXPECT_EQ(outcomes.CountUseful(corpus.splits().test), manual);
}

}  // namespace
}  // namespace ie
