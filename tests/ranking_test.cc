#include <gtest/gtest.h>

#include "ranking/document_ranker.h"
#include "ranking/factcrawl.h"
#include "ranking/learned_rankers.h"
#include "ranking/query_learning.h"
#include "test_util.h"

namespace ie {
namespace {

SparseVector Vec(std::vector<SparseVector::Entry> entries) {
  return SparseVector::FromUnsorted(std::move(entries));
}

std::vector<LabeledExample> TopicalSample(size_t n, uint64_t seed = 1) {
  // Useful docs use features {0..4}, useless {10..14}, shared noise {20}.
  Rng rng(seed);
  std::vector<LabeledExample> sample;
  for (size_t i = 0; i < n; ++i) {
    const bool useful = i % 2 == 0;
    std::vector<SparseVector::Entry> entries;
    for (int k = 0; k < 3; ++k) {
      const uint32_t base = useful ? 0 : 10;
      entries.emplace_back(base + rng.NextBounded(5), 1.0f);
    }
    entries.emplace_back(20, 0.5f);
    SparseVector v = Vec(std::move(entries));
    v.Normalize();
    sample.push_back({std::move(v), useful ? 1 : -1});
  }
  return sample;
}

// ---- Reference rankers -----------------------------------------------------

TEST(RandomRankerTest, ScoresVaryAndAreDeterministicPerSeed) {
  RandomRanker a(5);
  const SparseVector x = Vec({{0, 1.0f}});
  const double s1 = a.Score(x);
  const double s2 = a.Score(x);
  EXPECT_NE(s1, s2);  // consumes the stream
  RandomRanker b(5);
  EXPECT_EQ(b.Score(x), s1);
}

TEST(PerfectRankerTest, ScoresFollowInjectedUsefulness) {
  PerfectRanker ranker;
  ranker.set_current_usefulness(1.0);
  EXPECT_EQ(ranker.Score(SparseVector()), 1.0);
  ranker.set_current_usefulness(0.0);
  EXPECT_EQ(ranker.Score(SparseVector()), 0.0);
}

// ---- Learned rankers --------------------------------------------------------

template <typename Ranker>
void ExpectSeparation(Ranker& ranker) {
  const auto sample = TopicalSample(200);
  ranker.TrainInitial(sample);
  ranker.SnapshotForScoring();
  double pos = 0.0, neg = 0.0;
  size_t pos_n = 0, neg_n = 0;
  for (const auto& ex : sample) {
    if (ex.label > 0) {
      pos += ranker.Score(ex.features);
      ++pos_n;
    } else {
      neg += ranker.Score(ex.features);
      ++neg_n;
    }
  }
  EXPECT_GT(pos / pos_n, neg / neg_n);
}

TEST(RsvmIeRankerTest, SeparatesClasses) {
  RsvmIeRanker ranker;
  ExpectSeparation(ranker);
}

TEST(BaggIeRankerTest, SeparatesClasses) {
  BaggIeRanker ranker;
  ExpectSeparation(ranker);
}

TEST(RsvmIeRankerTest, ScoreUsesSnapshotNotLiveModel) {
  RsvmIeRanker ranker;
  const auto sample = TopicalSample(100);
  ranker.TrainInitial(sample);
  ranker.SnapshotForScoring();
  const SparseVector probe = Vec({{0, 1.0f}});
  const double before = ranker.Score(probe);
  // Observing new documents must not change scores until re-snapshot.
  for (int i = 0; i < 50; ++i) ranker.Observe(probe, true);
  EXPECT_DOUBLE_EQ(ranker.Score(probe), before);
  ranker.SnapshotForScoring();
  EXPECT_NE(ranker.Score(probe), before);
}

TEST(RsvmIeRankerTest, CloneIsIndependent) {
  RsvmIeRanker ranker;
  ranker.TrainInitial(TopicalSample(100));
  std::unique_ptr<DocumentRanker> clone = ranker.Clone();
  const SparseVector probe = Vec({{0, 1.0f}});
  for (int i = 0; i < 100; ++i) clone->Observe(probe, true);
  // The clone's weights diverge from the original's.
  const double cosine =
      WeightVector::Cosine(ranker.ModelWeights(), clone->ModelWeights());
  EXPECT_LT(cosine, 1.0 - 1e-6);
}

TEST(RsvmIeRankerTest, InTrainingFeatureSelectionKeepsModelSparse) {
  RsvmIeRanker ranker;
  ranker.TrainInitial(TopicalSample(400));
  // 11 discriminative features exist; the model must not blow up beyond
  // the observed feature space.
  EXPECT_LE(ranker.NonZeroFeatureCount(), 21u);
  EXPECT_GE(ranker.NonZeroFeatureCount(), 2u);
}

TEST(BaggIeRankerTest, ScoreIsSumOfMemberSigmoids) {
  BaggIeRanker ranker;
  ranker.TrainInitial(TopicalSample(120));
  ranker.SnapshotForScoring();
  const auto sample = TopicalSample(10, 99);
  for (const auto& ex : sample) {
    const double s = ranker.Score(ex.features);
    EXPECT_GE(s, 0.0);
    EXPECT_LE(s, 3.0);
  }
}

// ---- Query learning -----------------------------------------------------

TEST(QueryLearningTest, SvmMethodFindsDiscriminativeTerms) {
  const Corpus& corpus = test::SharedCorpus();
  // Label by Person-Charge usefulness; positive terms should be courtroom
  // vocabulary, not stopwords.
  const auto& outcomes = test::SharedOutcomes(RelationId::kPersonCharge);
  std::vector<LabeledExample> sample;
  size_t positives = 0;
  for (DocId id = 0; id < corpus.size() && sample.size() < 1500; ++id) {
    const bool useful = outcomes.useful(id);
    if (useful) ++positives;
    if (!useful && sample.size() > 12 * positives) continue;  // balance-ish
    sample.push_back({test::SharedWordFeatures()[id], useful ? 1 : -1});
  }
  ASSERT_GT(positives, 5u);
  const auto queries = LearnQueries(sample, corpus.vocab(),
                                    QueryMethod::kSvmWeights, 15);
  ASSERT_FALSE(queries.empty());
  for (const std::string& q : queries) {
    EXPECT_TRUE(IsQueryableTerm(q)) << q;
    EXPECT_NE(q, "the");
    EXPECT_NE(q, "of");
  }
}

TEST(QueryLearningTest, AllMethodsProduceTermsOnSyntheticData) {
  Vocabulary vocab;
  const uint32_t useful_term = vocab.Intern("courtroom");
  const uint32_t common_term = vocab.Intern("the");
  std::vector<LabeledExample> sample;
  for (int i = 0; i < 200; ++i) {
    const bool useful = i % 2 == 0;
    std::vector<SparseVector::Entry> entries = {{common_term, 1.0f}};
    if (useful) entries.emplace_back(useful_term, 1.0f);
    sample.push_back({Vec(std::move(entries)), useful ? 1 : -1});
  }
  for (QueryMethod method :
       {QueryMethod::kSvmWeights, QueryMethod::kLogOdds,
        QueryMethod::kTfDominance}) {
    const auto queries = LearnQueries(sample, vocab, method, 5);
    ASSERT_FALSE(queries.empty()) << QueryMethodName(method);
    EXPECT_EQ(queries[0], "courtroom") << QueryMethodName(method);
  }
}

TEST(QueryLearningTest, SkipsAttributeFeatures) {
  Vocabulary vocab;
  const uint32_t attr = vocab.Intern("attr:tsunami");
  const uint32_t word = vocab.Intern("tsunami");
  std::vector<LabeledExample> sample;
  for (int i = 0; i < 100; ++i) {
    const bool useful = i % 2 == 0;
    std::vector<SparseVector::Entry> entries;
    if (useful) {
      entries = {{attr, 1.0f}, {word, 0.8f}};
    } else {
      entries = {{vocab.Intern("filler"), 1.0f}};
    }
    sample.push_back({Vec(std::move(entries)), useful ? 1 : -1});
  }
  for (const auto& q :
       LearnQueries(sample, vocab, QueryMethod::kLogOdds, 5)) {
    EXPECT_EQ(q.find(':'), std::string::npos);
  }
}

TEST(QueryLearningTest, EmptyWithoutBothClasses) {
  Vocabulary vocab;
  std::vector<LabeledExample> sample = {
      {Vec({{vocab.Intern("x"), 1.0f}}), 1}};
  EXPECT_TRUE(
      LearnQueries(sample, vocab, QueryMethod::kLogOdds, 5).empty());
}

// ---- FactCrawl ------------------------------------------------------------

class FactCrawlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Index: docs 0-9 "courtroom trial" (useful), 10-29 "weather" docs.
    for (DocId id = 0; id < 30; ++id) {
      Document doc;
      Sentence s;
      if (id < 10) {
        s.tokens = {vocab_.Intern("courtroom"), vocab_.Intern("trial"),
                    vocab_.Intern("fraud")};
      } else {
        s.tokens = {vocab_.Intern("weather"), vocab_.Intern("sunny"),
                    vocab_.Intern("breeze")};
      }
      doc.sentences.push_back(std::move(s));
      doc.id = id;
      ASSERT_TRUE(index_.Add(doc).ok());
    }
    // Sample: labeled examples exposing "courtroom" as a useful-doc term.
    for (int i = 0; i < 60; ++i) {
      const bool useful = i % 2 == 0;
      std::vector<SparseVector::Entry> entries;
      entries.emplace_back(
          useful ? vocab_.Intern("courtroom") : vocab_.Intern("weather"),
          1.0f);
      sample_.push_back(
          {SparseVector::FromUnsorted(std::move(entries)), useful ? 1 : -1});
    }
  }

  bool IsUseful(DocId id) const { return id < 10; }

  Vocabulary vocab_;
  InvertedIndex index_;
  std::vector<LabeledExample> sample_;
};

TEST_F(FactCrawlTest, LearnsAndScoresUsefulDocsHigher) {
  FactCrawlOptions options;
  options.retrieved_per_query = 20;
  options.eval_docs_per_query = 5;
  FactCrawl fc(options, &index_, &vocab_);
  fc.LearnInitialQueries(sample_, 3);
  ASSERT_GT(fc.NumQueries(), 0u);
  fc.EvaluateQueries([&](DocId id) { return IsUseful(id); });
  fc.RecomputeScores();
  EXPECT_GT(fc.Score(0), fc.Score(15));
  EXPECT_GT(fc.Score(0), 0.0);
}

TEST_F(FactCrawlTest, EvaluateQueriesReturnsConsumedDocs) {
  FactCrawlOptions options;
  options.eval_docs_per_query = 5;
  options.retrieved_per_query = 20;
  FactCrawl fc(options, &index_, &vocab_);
  fc.LearnInitialQueries(sample_, 3);
  const auto consumed =
      fc.EvaluateQueries([&](DocId id) { return IsUseful(id); });
  EXPECT_FALSE(consumed.empty());
  EXPECT_LE(consumed.size(), fc.NumQueries() * 5);
}

TEST_F(FactCrawlTest, ObserveProcessedShiftsQuality) {
  FactCrawlOptions options;
  options.retrieved_per_query = 20;
  options.eval_docs_per_query = 3;
  FactCrawl fc(options, &index_, &vocab_);
  fc.LearnInitialQueries(sample_, 3);
  fc.EvaluateQueries([&](DocId id) { return IsUseful(id); });
  fc.RecomputeScores();
  const double before = fc.Score(0);
  // Feed contradicting evidence: docs retrieved by the courtroom query turn
  // out useless.
  for (DocId id = 0; id < 10; ++id) fc.ObserveProcessed(id, false);
  fc.RecomputeScores();
  EXPECT_LT(fc.Score(0), before);
}

TEST_F(FactCrawlTest, RefreshQueriesAddsNewTerms) {
  FactCrawlOptions options;
  options.retrieved_per_query = 20;
  options.new_queries_per_refresh = 3;
  FactCrawl fc(options, &index_, &vocab_);
  fc.LearnInitialQueries(sample_, 3);
  const size_t before = fc.NumQueries();
  // New labeled evidence exposing "trial" and "fraud".
  std::vector<LabeledExample> labeled;
  for (int i = 0; i < 40; ++i) {
    const bool useful = i % 2 == 0;
    std::vector<SparseVector::Entry> entries;
    entries.emplace_back(
        useful ? vocab_.Intern("fraud") : vocab_.Intern("breeze"), 1.0f);
    labeled.push_back(
        {SparseVector::FromUnsorted(std::move(entries)), useful ? 1 : -1});
  }
  fc.RefreshQueries(labeled, 9);
  EXPECT_GT(fc.NumQueries(), before);
}

TEST_F(FactCrawlTest, UnretrievedDocScoresZero) {
  FactCrawlOptions options;
  options.retrieved_per_query = 5;
  FactCrawl fc(options, &index_, &vocab_);
  fc.LearnInitialQueries(sample_, 3);
  fc.EvaluateQueries([&](DocId id) { return IsUseful(id); });
  fc.RecomputeScores();
  EXPECT_DOUBLE_EQ(fc.Score(9999), 0.0);
}

}  // namespace
}  // namespace ie
