// Equivalence guarantee of the incremental delta re-rank engine: with the
// same seed, an incremental run and an always-full-rescore run must process
// documents in the byte-identical order and fire updates at the same
// positions (DESIGN.md §8). Also pins the satellite fixes that ride along
// with the engine: per-ranker Mod-C trigger angles and the O(1) example
// buffer of non-adaptive runs.
#include <gtest/gtest.h>

#include <tuple>

#include "pipeline/pipeline.h"
#include "test_util.h"

namespace ie {
namespace {

PipelineConfig Config(RankerKind ranker, UpdateKind update, uint64_t seed,
                      bool incremental) {
  PipelineConfig config =
      PipelineConfig::Defaults(ranker, SamplerKind::kSRS, update, seed);
  config.sample_size = 120;
  // Frequent updates → small absorb batches → sparse correction supports:
  // the regime the incremental engine is built for. At the paper's 50
  // updates the small test pool gives ~34-doc batches whose corrections
  // brush the density threshold for the single-component RSVM-IE ranker.
  config.windf_updates = 150;
  config.incremental_rerank = incremental;
  return config;
}

using EquivalenceParam = std::tuple<RankerKind, UpdateKind, uint64_t>;

class RerankEquivalenceTest
    : public ::testing::TestWithParam<EquivalenceParam> {};

TEST_P(RerankEquivalenceTest, IncrementalMatchesFullOrder) {
  const auto [ranker, update, seed] = GetParam();
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const PipelineResult full = AdaptiveExtractionPipeline::Run(
      context, Config(ranker, update, seed, /*incremental=*/false));
  const PipelineResult incremental = AdaptiveExtractionPipeline::Run(
      context, Config(ranker, update, seed, /*incremental=*/true));

  EXPECT_EQ(full.processing_order, incremental.processing_order);
  EXPECT_EQ(full.update_positions, incremental.update_positions);
  EXPECT_EQ(full.processed_useful, incremental.processed_useful);

  // The full-mode run must never have taken a delta pass ...
  EXPECT_EQ(full.delta_rescores(), 0u);
  // ... and the incremental run must have actually exercised the delta
  // path (not silently fallen back to full rescoring on every update) for
  // the equality above to mean anything. Only Wind-F's frequent small
  // batches are guaranteed sparse; Mod-C fires a handful of huge-batch
  // updates on this pool, where falling back is the intended behavior.
  if (update == UpdateKind::kWindF && incremental.NumUpdates() >= 5) {
    EXPECT_GT(incremental.delta_rescores(), 0u)
        << "every delta pass fell back: fallbacks="
        << incremental.rerank_density_fallbacks();
  }
}

INSTANTIATE_TEST_SUITE_P(
    WindFAcrossSeeds, RerankEquivalenceTest,
    ::testing::Combine(::testing::Values(RankerKind::kBAggIE,
                                         RankerKind::kRSVMIE),
                       ::testing::Values(UpdateKind::kWindF),
                       ::testing::Values(3u, 5u, 7u)));

INSTANTIATE_TEST_SUITE_P(
    ModC, RerankEquivalenceTest,
    ::testing::Combine(::testing::Values(RankerKind::kBAggIE,
                                         RankerKind::kRSVMIE),
                       ::testing::Values(UpdateKind::kModC),
                       ::testing::Values(5u)));

// Satellite: PipelineConfig::Defaults must give the two learned rankers
// distinct Mod-C trigger angles (the paper calibrates 30 deg for BAgg-IE
// vs 5 deg for RSVM-IE; a refactor once collapsed both arms of the
// conditional to the same constant).
TEST(RerankConfigTest, ModCAlphaDefaultsDifferPerRanker) {
  const PipelineConfig bagg = PipelineConfig::Defaults(
      RankerKind::kBAggIE, SamplerKind::kSRS, UpdateKind::kModC, 1);
  const PipelineConfig rsvm = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, 1);
  EXPECT_NE(bagg.modc.alpha_degrees, rsvm.modc.alpha_degrees);
  // The committee swings through wider angles per absorbed batch, so its
  // trigger must sit above the RSVM-IE one (paper Section 4.2 ordering).
  EXPECT_GT(bagg.modc.alpha_degrees, rsvm.modc.alpha_degrees);
}

// Satellite: non-adaptive runs must not buffer processed examples at all —
// the buffer only exists to hand absorbed documents to the detector at the
// next update, and kNone never updates. Guards against re-introducing the
// unbounded feature-vector accumulation this PR removed.
TEST(RerankBufferTest, NonAdaptiveRunKeepsNoExampleBuffer) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const PipelineResult result = AdaptiveExtractionPipeline::Run(
      context, Config(RankerKind::kRSVMIE, UpdateKind::kNone, 11,
                      /*incremental=*/true));
  EXPECT_EQ(result.peak_buffer_examples(), 0u);
  EXPECT_EQ(result.NumUpdates(), 0u);
}

TEST(RerankBufferTest, AdaptiveRunBuffersBetweenUpdates) {
  const SharedContext context =
      test::MakeSharedContext(RelationId::kPersonCharge);
  const PipelineResult result = AdaptiveExtractionPipeline::Run(
      context, Config(RankerKind::kRSVMIE, UpdateKind::kWindF, 11,
                      /*incremental=*/true));
  EXPECT_GT(result.NumUpdates(), 0u);
  // The buffer drains at every update, so its peak is bounded by the
  // largest between-updates interval, not the pool size.
  EXPECT_GT(result.peak_buffer_examples(), 0u);
  EXPECT_LT(result.peak_buffer_examples(), context.pool->size() / 2);
}

}  // namespace
}  // namespace ie
