#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace ie {
namespace {

// ---- string_util -----------------------------------------------------

TEST(SplitStringTest, BasicSplit) {
  const auto pieces = SplitString("a b c", " ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "c");
}

TEST(SplitStringTest, DropsEmptyPieces) {
  const auto pieces = SplitString("  a   b  ", " ");
  ASSERT_EQ(pieces.size(), 2u);
}

TEST(SplitStringTest, MultipleDelimiters) {
  const auto pieces = SplitString("a,b;c", ",;");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "b");
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("", " ").empty());
}

TEST(SplitStringTest, NoDelimiter) {
  const auto pieces = SplitString("abc", " ");
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(JoinStringsTest, Joins) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"x"}, ","), "x");
}

TEST(ToLowerAsciiTest, Lowercases) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123"), "hello 123");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("attr:foo", "attr:"));
  EXPECT_FALSE(StartsWith("at", "attr:"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("c", ".cc"));
}

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
}

// ---- stats -------------------------------------------------------------

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(RunningStatsTest, TracksMinAndMax) {
  RunningStats stats;
  EXPECT_DOUBLE_EQ(stats.min(), 0.0);  // empty → 0 for stable JSON
  EXPECT_DOUBLE_EQ(stats.max(), 0.0);
  for (double x : {4.0, -2.0, 9.0, 3.0}) stats.Add(x);
  EXPECT_DOUBLE_EQ(stats.min(), -2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(RunningStatsTest, MergeMatchesSequentialAdd) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  RunningStats all;
  for (double x : xs) all.Add(x);
  RunningStats a, b;
  for (size_t i = 0; i < xs.size(); ++i) (i < 3 ? a : b).Add(xs[i]);
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStatsTest, MergeWithEmptySides) {
  RunningStats empty, filled;
  filled.Add(1.0);
  filled.Add(3.0);
  RunningStats lhs = filled;
  lhs.Merge(empty);  // no-op
  EXPECT_EQ(lhs.count(), 2u);
  EXPECT_DOUBLE_EQ(lhs.mean(), 2.0);
  RunningStats rhs = empty;
  rhs.Merge(filled);  // adopt
  EXPECT_EQ(rhs.count(), 2u);
  EXPECT_DOUBLE_EQ(rhs.mean(), 2.0);
  EXPECT_DOUBLE_EQ(rhs.min(), 1.0);
  EXPECT_DOUBLE_EQ(rhs.max(), 3.0);
}

TEST(RunningStatsTest, FromMomentsRoundTrips) {
  RunningStats stats;
  for (double x : {1.0, 2.0, 6.0}) stats.Add(x);
  const RunningStats rebuilt = RunningStats::FromMoments(
      stats.count(), stats.mean(), stats.m2(), stats.min(), stats.max());
  EXPECT_EQ(rebuilt.count(), stats.count());
  EXPECT_DOUBLE_EQ(rebuilt.mean(), stats.mean());
  EXPECT_DOUBLE_EQ(rebuilt.variance(), stats.variance());
  EXPECT_DOUBLE_EQ(rebuilt.min(), stats.min());
  EXPECT_DOUBLE_EQ(rebuilt.max(), stats.max());
  // Negative m2 (float drift in shard merges) clamps to zero variance.
  EXPECT_DOUBLE_EQ(
      RunningStats::FromMoments(3, 1.0, -1e-18, 0.0, 2.0).variance(), 0.0);
}

TEST(MeanStdDevTest, VectorHelpers) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({1.0, 2.0, 3.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
}

// ---- timers ------------------------------------------------------------

TEST(TimerTest, WallTimerAdvances) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, CpuTimerMeasuresWork) {
  CpuTimer timer;
  volatile double sink = 0.0;
  // Spin until the thread-CPU clock visibly advances (bounded iterations).
  for (long i = 0; i < 200000000 && timer.ElapsedSeconds() <= 0.0; ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
}

TEST(SimulatedClockTest, Accumulates) {
  SimulatedClock clock;
  clock.ChargeSeconds(120.0);
  clock.AddMeasuredSeconds(6.0);
  EXPECT_DOUBLE_EQ(clock.simulated_seconds(), 120.0);
  EXPECT_DOUBLE_EQ(clock.measured_seconds(), 6.0);
  EXPECT_DOUBLE_EQ(clock.TotalSeconds(), 126.0);
  EXPECT_DOUBLE_EQ(clock.TotalMinutes(), 2.1);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.TotalSeconds(), 0.0);
}

// ---- ParallelFor edge cases -------------------------------------------

TEST(ParallelForEdgeTest, ZeroIterationsNeverCallsFn) {
  ParallelFor(0, 4, [](size_t) { FAIL() << "fn called for n=0"; });
  ParallelFor(0, 0, [](size_t) { FAIL() << "fn called for n=0"; });
}

TEST(ParallelForEdgeTest, SingleIteration) {
  size_t calls = 0;
  ParallelFor(1, 8, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1u);
}

TEST(ParallelForEdgeTest, ZeroThreadsRunsSerially) {
  // threads=0 must behave like a serial loop, not spawn-nothing-and-skip.
  std::vector<int> hits(10, 0);
  ParallelFor(10, 0, [&](size_t i) { hits[i] = 1; });
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 10);
}

TEST(ParallelForEdgeTest, SmallNFallsBackToSerial) {
  // n < 2*threads runs on the calling thread; verify by observing strictly
  // increasing order, which threads would not guarantee.
  std::vector<size_t> order;
  ParallelFor(7, 4, [&](size_t i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 7u);
  for (size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(ParallelForEdgeTest, SlotWritesAreDeterministic) {
  // Each index writes only its own slot, so two runs must agree exactly.
  const size_t n = 4096;
  std::vector<uint64_t> a(n), b(n);
  auto fill = [](std::vector<uint64_t>& out) {
    return [&out](size_t i) { out[i] = i * 2654435761u + 17; };
  };
  ParallelFor(n, 8, fill(a));
  ParallelFor(n, 3, fill(b));
  EXPECT_EQ(a, b);
}

TEST(ParallelForEdgeTest, CoversEveryIndexExactlyOnce) {
  const size_t n = 1031;  // prime: exercises a ragged final block
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(n, 4, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "i=" << i;
}

TEST(ParallelForEdgeTest, SerialExceptionPropagates) {
  EXPECT_THROW(
      ParallelFor(5, 1,
                  [](size_t i) {
                    if (i == 3) throw std::runtime_error("serial boom");
                  }),
      std::runtime_error);
}

TEST(ParallelForEdgeTest, WorkerExceptionRethrownAfterJoin) {
  // A throwing fn must not reach std::terminate; the exception surfaces on
  // the calling thread and every worker is joined first.
  std::atomic<size_t> visited{0};
  try {
    ParallelFor(100, 4, [&](size_t i) {
      if (i == 50) throw std::runtime_error("worker boom");
      visited.fetch_add(1);
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& err) {
    EXPECT_STREQ(err.what(), "worker boom");
  }
  // Only the throwing worker abandons its block; the other three blocks of
  // 25 complete in full.
  EXPECT_GE(visited.load(), 75u);
  EXPECT_LT(visited.load(), 100u);
}

TEST(ParallelForEdgeTest, FirstExceptionByWorkerOrderWins) {
  // Workers 0 and 2 both throw; the rethrow must be worker 0's (stable
  // selection, not a race on "whoever throws first").
  for (int round = 0; round < 20; ++round) {
    try {
      ParallelFor(100, 4, [](size_t i) {
        if (i == 10) throw std::runtime_error("block0");   // worker 0
        if (i == 60) throw std::runtime_error("block2");   // worker 2
      });
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& err) {
      EXPECT_STREQ(err.what(), "block0");
    }
  }
}

// ---- logging -----------------------------------------------------------

TEST(LoggingTest, LevelGate) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(IE_LOG_ENABLED(kInfo));
  EXPECT_TRUE(IE_LOG_ENABLED(kError));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(IE_LOG_ENABLED(kInfo));
  SetLogLevel(old_level);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  IE_CHECK(1 + 1 == 2);  // must not abort
}

}  // namespace
}  // namespace ie
