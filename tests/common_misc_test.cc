#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/stats.h"
#include "common/string_util.h"
#include "common/timer.h"

namespace ie {
namespace {

// ---- string_util -----------------------------------------------------

TEST(SplitStringTest, BasicSplit) {
  const auto pieces = SplitString("a b c", " ");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "c");
}

TEST(SplitStringTest, DropsEmptyPieces) {
  const auto pieces = SplitString("  a   b  ", " ");
  ASSERT_EQ(pieces.size(), 2u);
}

TEST(SplitStringTest, MultipleDelimiters) {
  const auto pieces = SplitString("a,b;c", ",;");
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[1], "b");
}

TEST(SplitStringTest, EmptyInput) {
  EXPECT_TRUE(SplitString("", " ").empty());
}

TEST(SplitStringTest, NoDelimiter) {
  const auto pieces = SplitString("abc", " ");
  ASSERT_EQ(pieces.size(), 1u);
  EXPECT_EQ(pieces[0], "abc");
}

TEST(JoinStringsTest, Joins) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"x"}, ","), "x");
}

TEST(ToLowerAsciiTest, Lowercases) {
  EXPECT_EQ(ToLowerAscii("HeLLo 123"), "hello 123");
}

TEST(StartsEndsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("attr:foo", "attr:"));
  EXPECT_FALSE(StartsWith("at", "attr:"));
  EXPECT_TRUE(EndsWith("file.cc", ".cc"));
  EXPECT_FALSE(EndsWith("c", ".cc"));
}

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.234), "1.23");
}

// ---- stats -------------------------------------------------------------

TEST(RunningStatsTest, MeanAndVariance) {
  RunningStats stats;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.Add(x);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(RunningStatsTest, SingleSampleHasZeroVariance) {
  RunningStats stats;
  stats.Add(3.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(MeanStdDevTest, VectorHelpers) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_NEAR(StdDev({1.0, 2.0, 3.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({5.0}), 0.0);
}

// ---- timers ------------------------------------------------------------

TEST(TimerTest, WallTimerAdvances) {
  WallTimer timer;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  EXPECT_GE(timer.ElapsedSeconds(), 0.0);
}

TEST(TimerTest, CpuTimerMeasuresWork) {
  CpuTimer timer;
  volatile double sink = 0.0;
  // Spin until the thread-CPU clock visibly advances (bounded iterations).
  for (long i = 0; i < 200000000 && timer.ElapsedSeconds() <= 0.0; ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  EXPECT_GT(timer.ElapsedSeconds(), 0.0);
}

TEST(SimulatedClockTest, Accumulates) {
  SimulatedClock clock;
  clock.ChargeSeconds(120.0);
  clock.AddMeasuredSeconds(6.0);
  EXPECT_DOUBLE_EQ(clock.simulated_seconds(), 120.0);
  EXPECT_DOUBLE_EQ(clock.measured_seconds(), 6.0);
  EXPECT_DOUBLE_EQ(clock.TotalSeconds(), 126.0);
  EXPECT_DOUBLE_EQ(clock.TotalMinutes(), 2.1);
  clock.Reset();
  EXPECT_DOUBLE_EQ(clock.TotalSeconds(), 0.0);
}

// ---- logging -----------------------------------------------------------

TEST(LoggingTest, LevelGate) {
  const LogLevel old_level = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_FALSE(IE_LOG_ENABLED(kInfo));
  EXPECT_TRUE(IE_LOG_ENABLED(kError));
  SetLogLevel(LogLevel::kDebug);
  EXPECT_TRUE(IE_LOG_ENABLED(kInfo));
  SetLogLevel(old_level);
}

TEST(LoggingTest, CheckPassesOnTrue) {
  IE_CHECK(1 + 1 == 2);  // must not abort
}

}  // namespace
}  // namespace ie
