// Figure 12 — average recall curves for the final technique comparison in
// the full-access scenario: (a) Disease–Outbreak (sparse) and (b)
// Person–Career (dense). Adaptive BAgg-IE / RSVM-IE (CQS + Mod-C) vs FC
// and A-FC, with random/perfect references.
//
// Expected shape (paper): the performance gap between the learned rankers
// and the FactCrawl baselines is wider for the sparse relation than for
// the dense one; RSVM-IE dominates everywhere.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

namespace {

void RunPanel(Harness& harness, RelationId relation, const char* title) {
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf("\n%s: average recall (%%) for %s\n", title,
              GetRelation(relation).name.c_str());
  std::printf("%-28s", "processed %:");
  for (int p = 10; p <= 100; p += 10) std::printf(" %6d", p);
  std::printf("\n");

  auto run_ranker = [&](RankerKind kind, UpdateKind update,
                        const char* label, uint64_t base_seed) {
    const AggregateMetrics agg = RunExperiment(
        label, seeds, [&](size_t r) {
          PipelineConfig config = PipelineConfig::Defaults(
              kind, SamplerKind::kCQS, update, RunSeed(base_seed, r));
          if (kind == RankerKind::kRandom ||
              kind == RankerKind::kPerfect) {
            config.sampler = SamplerKind::kSRS;
          }
          config.sample_size = sample;
          const int cqs_list = config.sampler == SamplerKind::kCQS
                                   ? static_cast<int>(r)
                                   : -1;
          return AdaptiveExtractionPipeline::Run(
              harness.Context(relation, cqs_list), config);
        });
    PrintCurve(agg);
  };

  run_ranker(RankerKind::kRandom, UpdateKind::kNone, "Random Ranking", 1400);
  run_ranker(RankerKind::kPerfect, UpdateKind::kNone, "Perfect Ranking",
             1401);
  run_ranker(RankerKind::kBAggIE, UpdateKind::kModC, "BAgg-IE", 1402);
  run_ranker(RankerKind::kRSVMIE, UpdateKind::kModC, "RSVM-IE", 1403);

  for (const auto& [adaptive, label] :
       std::vector<std::pair<bool, const char*>>{{false, "FC"},
                                                 {true, "A-FC"}}) {
    const AggregateMetrics agg = RunExperiment(
        label, seeds, [&](size_t r) {
          FactCrawlConfig config;
          config.adaptive = adaptive;
          config.sample_size = sample;
          config.seed = RunSeed(1410 + (adaptive ? 1 : 0), r);
          return FactCrawlPipeline::Run(harness.Context(relation), config);
        });
    PrintCurve(agg);
  }
}

}  // namespace

int main() {
  Harness harness({RelationId::kDiseaseOutbreak, RelationId::kPersonCareer});
  RunPanel(harness, RelationId::kDiseaseOutbreak, "Figure 12a");
  RunPanel(harness, RelationId::kPersonCareer, "Figure 12b");
  return 0;
}
