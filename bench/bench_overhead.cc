// Microbenchmarks (google-benchmark) for the ranking-side hot paths: the
// per-document online updates of RSVM-IE / BAgg-IE, bulk scoring (the
// re-rank inner loop), dense-weight materialization (Mod-C / Top-K), and
// featurization. These are the operations whose cost the paper's "low
// overhead" claim rests on.
#include <benchmark/benchmark.h>

#include "harness.h"
#include "ranking/learned_rankers.h"

using namespace ie;
using namespace ie::bench;

namespace {

Harness* g_harness = nullptr;
std::vector<LabeledExample> g_stream;

void BuildStream() {
  const auto& pool = g_harness->test_pool();
  const auto& outcomes =
      g_harness->world().outcome(RelationId::kPersonCharge);
  SharedContext ctx = g_harness->Context(RelationId::kPersonCharge);
  for (size_t i = 0; i < 3000 && i < pool.size(); ++i) {
    const DocId id = pool[i];
    g_stream.push_back(
        {(*ctx.word_features)[id], outcomes.useful(id) ? 1 : -1});
  }
}

template <typename Ranker>
std::unique_ptr<Ranker> Trained() {
  auto ranker = std::make_unique<Ranker>();
  std::vector<LabeledExample> sample(g_stream.begin(),
                                     g_stream.begin() + 400);
  ranker->TrainInitial(sample);
  return ranker;
}

void BM_RsvmObserve(benchmark::State& state) {
  auto ranker = Trained<RsvmIeRanker>();
  size_t i = 0;
  for (auto _ : state) {
    const auto& ex = g_stream[i++ % g_stream.size()];
    ranker->Observe(ex.features, ex.label > 0);
  }
}
BENCHMARK(BM_RsvmObserve);

void BM_BaggObserve(benchmark::State& state) {
  auto ranker = Trained<BaggIeRanker>();
  size_t i = 0;
  for (auto _ : state) {
    const auto& ex = g_stream[i++ % g_stream.size()];
    ranker->Observe(ex.features, ex.label > 0);
  }
}
BENCHMARK(BM_BaggObserve);

void BM_RsvmScore(benchmark::State& state) {
  auto ranker = Trained<RsvmIeRanker>();
  ranker->SnapshotForScoring();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ranker->Score(g_stream[i++ % g_stream.size()].features));
  }
}
BENCHMARK(BM_RsvmScore);

void BM_BaggScore(benchmark::State& state) {
  auto ranker = Trained<BaggIeRanker>();
  ranker->SnapshotForScoring();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        ranker->Score(g_stream[i++ % g_stream.size()].features));
  }
}
BENCHMARK(BM_BaggScore);

void BM_ModelWeightsMaterialization(benchmark::State& state) {
  auto ranker = Trained<RsvmIeRanker>();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ranker->ModelWeights());
  }
}
BENCHMARK(BM_ModelWeightsMaterialization);

void BM_Featurize(benchmark::State& state) {
  const Corpus& corpus = g_harness->world().corpus;
  Featurizer& featurizer = g_harness->featurizer();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        featurizer.Featurize(corpus.doc(static_cast<DocId>(
            i++ % corpus.size()))));
  }
}
BENCHMARK(BM_Featurize);

void BM_Bm25Search(benchmark::State& state) {
  SharedContext ctx = g_harness->Context(RelationId::kPersonCharge);
  const char* queries[] = {"fraud", "courtroom", "trial", "prosecutor"};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ctx.index->SearchText(
        queries[i++ % 4], g_harness->world().corpus.vocab(), 100));
  }
}
BENCHMARK(BM_Bm25Search);

}  // namespace

int main(int argc, char** argv) {
  Harness harness({RelationId::kPersonCharge},
                  std::min<size_t>(NumDocs(), 8000));
  g_harness = &harness;
  BuildStream();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
