// Ablation: RSVM-IE hyperparameter sensitivity (λAll, initial pairwise
// steps) measured by base-ranking average precision. Supports the
// DESIGN.md §5 parameter choices.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

int main() {
  Harness harness({RelationId::kPersonCharge, RelationId::kPersonCareer});
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf("\nRSVM-IE parameter sweep (base, SRS, full access)\n");
  std::printf("%-40s %10s %10s\n", "configuration", "PH AP%", "PC AP%");
  for (const double lambda_all : {0.02, 0.1, 0.5}) {
    for (const size_t init_pairs : {2000UL, 6000UL, 20000UL}) {
      for (const int steps_obs : {4}) {
        double ap[2];
        int col = 0;
        for (RelationId rel :
             {RelationId::kPersonCharge, RelationId::kPersonCareer}) {
          const AggregateMetrics agg = RunExperiment(
              "cfg", seeds, [&](size_t run) {
                PipelineConfig config = PipelineConfig::Defaults(
                    RankerKind::kRSVMIE, SamplerKind::kSRS,
                    UpdateKind::kNone, RunSeed(500, run));
                config.sample_size = sample;
                config.rsvm.rank_svm.sgd.lambda_all = lambda_all;
                config.rsvm.initial_pair_steps = init_pairs;
                config.rsvm.rank_svm.steps_per_observation = steps_obs;
                return AdaptiveExtractionPipeline::Run(
                    harness.Context(rel), config);
              });
          ap[col++] = 100.0 * agg.ap_mean;
        }
        std::printf("lambda_all=%.2f init_pairs=%-6zu %14.1f %10.1f\n",
                    lambda_all, init_pairs, ap[0], ap[1]);
      }
    }
  }
  return 0;
}
