// Table 4 — final comparison with the state-of-the-art ranking strategies
// over the test split, full-access scenario: adaptive BAgg-IE and RSVM-IE
// in their best configuration (CQS sampling + Mod-C update detection, per
// the development-set experiments) against FC and A-FC. Average precision
// and AUC, mean ± stddev.
//
// Expected shape (paper): RSVM-IE > BAgg-IE >> A-FC >~ FC on every
// relation; A-FC only modestly above FC; gaps widest for sparse relations.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

int main() {
  Harness harness(AllRelationIds());
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf(
      "\nTable 4: ranking quality by technique (full access)\n"
      "%-5s |  %-19s |  %-19s |  %-19s |  %-19s\n",
      "Rel.", "BAgg-IE (AP, AUC)", "RSVM-IE (AP, AUC)", "FC (AP, AUC)",
      "A-FC (AP, AUC)");

  for (RelationId relation : AllRelationIds()) {
    std::printf("%-5s |", GetRelation(relation).code.c_str());

    for (RankerKind kind : {RankerKind::kBAggIE, RankerKind::kRSVMIE}) {
      const AggregateMetrics agg = RunExperiment(
          "cfg", seeds, [&](size_t run) {
            PipelineConfig config = PipelineConfig::Defaults(
                kind, SamplerKind::kCQS, UpdateKind::kModC,
                RunSeed(1200 + static_cast<uint64_t>(kind), run));
            config.sample_size = sample;
            return AdaptiveExtractionPipeline::Run(
                harness.Context(relation, static_cast<int>(run)), config);
          });
      std::printf(" %5.1f±%3.1f%% %5.1f±%3.1f%% |", 100.0 * agg.ap_mean,
                  100.0 * agg.ap_std, 100.0 * agg.auc_mean,
                  100.0 * agg.auc_std);
    }

    for (bool adaptive : {false, true}) {
      const AggregateMetrics agg = RunExperiment(
          "fc", seeds, [&](size_t run) {
            FactCrawlConfig config;
            config.adaptive = adaptive;
            config.sample_size = sample;
            config.seed = RunSeed(1300 + (adaptive ? 1 : 0), run);
            return FactCrawlPipeline::Run(harness.Context(relation),
                                          config);
          });
      std::printf(" %5.1f±%3.1f%% %5.1f±%3.1f%% |", 100.0 * agg.ap_mean,
                  100.0 * agg.ap_std, 100.0 * agg.auc_mean,
                  100.0 * agg.auc_std);
    }
    std::printf("\n");
  }
  return 0;
}
