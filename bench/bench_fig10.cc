// Figure 10 — scalability: average CPU time (minutes) to reach target
// recall values {0.25, 0.5, 0.75, 1.0} for Natural Disaster–Location as a
// function of collection size (10%..100% of the test split), for BAgg-IE
// and RSVM-IE (adaptive, SRS + Mod-C). Time = simulated extraction cost
// (6 s/doc for ND) + measured ranking/detection overhead.
//
// Expected shape (paper): CPU time grows ~linearly with collection size at
// every recall target.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

int main() {
  Harness harness({RelationId::kNaturalDisaster});
  const RelationId relation = RelationId::kNaturalDisaster;
  const size_t seeds = NumSeeds();
  const auto& full_pool = harness.test_pool();

  std::printf(
      "\nFigure 10: CPU time (min) vs collection size, Natural "
      "Disaster-Location (adaptive, SRS+Mod-C)\n");
  std::printf("%-8s %-8s |", "size%", "tech");
  for (double r : {0.25, 0.5, 0.75, 1.0}) std::printf("  r=%.2f ", r);
  std::printf("\n");

  for (size_t pct = 10; pct <= 100; pct += 10) {
    const size_t n = full_pool.size() * pct / 100;
    const std::vector<DocId> pool(full_pool.begin(),
                                  full_pool.begin() + n);
    for (const auto& [kind, label] :
         std::vector<std::pair<RankerKind, const char*>>{
             {RankerKind::kBAggIE, "BAgg-IE"},
             {RankerKind::kRSVMIE, "RSVM-IE"}}) {
      double minutes[4] = {0, 0, 0, 0};
      for (size_t run = 0; run < seeds; ++run) {
        PipelineConfig config = PipelineConfig::Defaults(
            kind, SamplerKind::kSRS, UpdateKind::kModC,
            RunSeed(1000 + pct, run));
        config.sample_size =
            std::max<size_t>(150, pool.size() * 6 / 100);
        const PipelineResult result = AdaptiveExtractionPipeline::Run(
            harness.SubsetContext(relation, &pool), config);
        const double targets[4] = {0.25, 0.5, 0.75, 1.0};
        for (int i = 0; i < 4; ++i) {
          minutes[i] += Harness::MinutesToRecall(result, targets[i]) /
                        static_cast<double>(seeds);
        }
      }
      std::printf("%-8zu %-8s |", pct, label);
      for (int i = 0; i < 4; ++i) std::printf(" %8.1f", minutes[i]);
      std::printf("\n");
    }
  }
  return 0;
}
