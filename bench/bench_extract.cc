// Throughput bench for the speculative parallel extraction executor
// (DESIGN.md §9): end-to-end adaptive runs with *live* per-document
// extraction (SharedContext::extraction_system) at several
// extract_threads settings, reporting docs/sec and speedup over the serial
// run and re-proving byte-identical output along the way.
//
// Not a google-benchmark microbench: one run per thread count is the
// measurement (the unit of work is the whole pipeline), and results are
// emitted as JSON for CI trend tracking.
//
//   bench_extract [--threads=1,2,4,8] [--out=BENCH_extract.json]
//                 [--trace=trace.json] [--ledger=run.jsonl]
//                 [--metrics-out=metrics.prom]
//
// With --trace, an extra overhead smoke runs after the thread sweep:
// best-of-3 two-thread walls with the tracer off vs on. The traced runs
// export a Chrome-trace JSON to the given path (CI validates it with
// tools/check_trace.py) and the ratio lands in the output JSON as
// "trace_overhead_ratio".
//
// With --ledger, an analogous flight-recorder smoke runs: best-of-3
// serial walls with the recorder off vs on (JSONL ledger + in-memory
// series). The recorded runs write the ledger to the given path (CI
// validates it with tools/report.py --validate and cross-checks it
// against the trace) and the ratio lands as "recorder_overhead_ratio"
// (CI gates it at <= 1.03). Runs are re-checked byte-identical either
// way — the recorder is a passive observer.
//
// With --metrics-out, the serial run's metrics snapshot is rendered as
// Prometheus text exposition to the given path (validated by
// tools/report.py --validate-prom).
//
// Environment knobs (bench_common.h): IE_BENCH_DOCS (default here: 10000).
//
// The ≥2.5x speedup acceptance check at 8 threads only runs when the host
// actually has 8 hardware threads; on smaller machines it reports SKIP
// (the determinism checks still run — threads interleave on any core
// count).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "harness.h"
#include "pipeline/pipeline.h"

using namespace ie;
using namespace ie::bench;

namespace {

struct RunStats {
  size_t threads = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double docs_per_sec = 0.0;
  double speedup = 1.0;
  size_t hits = 0;
  size_t waits = 0;
  size_t misses = 0;
  size_t cancelled = 0;
};

std::vector<size_t> ParseThreadList(const std::string& csv) {
  std::vector<size_t> threads;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const long value = std::atol(csv.substr(pos, comma - pos).c_str());
    if (value > 0) threads.push_back(static_cast<size_t>(value));
    pos = comma + 1;
  }
  return threads;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> thread_counts = {1, 2, 4, 8};
  std::string out_path = "BENCH_extract.json";
  std::string trace_path;
  std::string ledger_path;
  std::string metrics_out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--threads=", 0) == 0) {
      thread_counts = ParseThreadList(arg.substr(10));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--trace=", 0) == 0) {
      trace_path = arg.substr(8);
    } else if (arg.rfind("--ledger=", 0) == 0) {
      ledger_path = arg.substr(9);
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out_path = arg.substr(14);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (thread_counts.empty() || thread_counts.front() != 1) {
    // The serial run is the speedup baseline and determinism reference.
    thread_counts.insert(thread_counts.begin(), 1);
  }

  const size_t num_docs = EnvSize("IE_BENCH_DOCS", 10000);
  Harness harness({RelationId::kPersonCharge}, num_docs);
  SharedContext context = harness.Context(RelationId::kPersonCharge);
  // Live extraction: run the real IE system per document so the executor
  // parallelizes real CPU, not the simulated-cost replay.
  context.extraction_system =
      &harness.world().system(RelationId::kPersonCharge);

  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, 17);
  config.sample_size = harness.SampleSize();

  std::vector<RunStats> runs;
  std::vector<DocId> reference_order;
  MetricsSnapshot serial_metrics;
  bool identical = true;
  for (size_t threads : thread_counts) {
    config.extract_threads = threads;
    const PipelineResult result =
        AdaptiveExtractionPipeline::Run(context, config);
    RunStats stats;
    stats.threads = threads;
    stats.wall_seconds = result.extract_wall_seconds;
    stats.cpu_seconds = result.extract_cpu_seconds;
    stats.docs_per_sec =
        result.extract_wall_seconds > 0.0
            ? static_cast<double>(result.processing_order.size()) /
                  result.extract_wall_seconds
            : 0.0;
    stats.hits = result.speculative_hits();
    stats.waits = result.speculative_waits();
    stats.misses = result.speculative_misses();
    stats.cancelled = result.speculative_cancelled();
    if (threads == 1) {
      reference_order = result.processing_order;
      serial_metrics = result.metrics;
    } else if (result.processing_order != reference_order) {
      identical = false;
      std::fprintf(stderr,
                   "FAIL: processing order at %zu threads differs from "
                   "serial\n",
                   threads);
    }
    if (!runs.empty() && stats.wall_seconds > 0.0) {
      stats.speedup = runs.front().wall_seconds / stats.wall_seconds;
    }
    runs.push_back(stats);
    std::fprintf(stderr,
                 "[bench_extract] threads=%zu wall=%.2fs cpu=%.2fs "
                 "docs/sec=%.0f speedup=%.2fx hits=%zu waits=%zu "
                 "misses=%zu cancelled=%zu\n",
                 stats.threads, stats.wall_seconds, stats.cpu_seconds,
                 stats.docs_per_sec, stats.speedup, stats.hits, stats.waits,
                 stats.misses, stats.cancelled);
  }

  // Acceptance: ≥2.5x at 8 threads, hardware permitting.
  const unsigned hw = std::thread::hardware_concurrency();
  double speedup8 = 0.0;
  for (const RunStats& stats : runs) {
    if (stats.threads == 8) speedup8 = stats.speedup;
  }
  const bool gate_applies = hw >= 8 && speedup8 > 0.0;
  const bool gate_passes = !gate_applies || speedup8 >= 2.5;
  std::fprintf(stderr, "[bench_extract] hw_concurrency=%u speedup@8=%.2fx %s\n",
               hw, speedup8,
               gate_applies ? (gate_passes ? "PASS" : "FAIL")
                            : "SKIP (needs >=8 hardware threads)");

  // Tracing-overhead smoke: best-of-3 two-thread walls, tracer off vs on.
  // Two threads so the trace carries executor spans and queue-depth
  // counters, not just the serial inline path. The traced runs all export
  // to trace_path (last one wins — any of them is a valid CI artifact).
  double trace_overhead_ratio = 0.0;
  if (!trace_path.empty()) {
    config.extract_threads = 2;
    const auto best_wall = [&](const std::string& path) {
      config.trace_path = path;
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        WallTimer timer;
        const PipelineResult result =
            AdaptiveExtractionPipeline::Run(context, config);
        IE_CHECK(result.processing_order == reference_order);
        const double wall = timer.ElapsedSeconds();
        if (best == 0.0 || wall < best) best = wall;
      }
      return best;
    };
    const double untraced = best_wall("");
    const double traced = best_wall(trace_path);
    config.trace_path.clear();
    if (untraced > 0.0) trace_overhead_ratio = traced / untraced;
    std::fprintf(stderr,
                 "[bench_extract] trace overhead: untraced=%.3fs "
                 "traced=%.3fs ratio=%.3f (trace -> %s)\n",
                 untraced, traced, trace_overhead_ratio, trace_path.c_str());
  }

  // Flight-recorder overhead smoke: 8 interleaved off/on pairs of serial
  // CPU seconds, recorder off vs on (both sinks: JSONL ledger, flushed
  // per iteration, plus the in-memory series). Serial runs on the calling
  // thread so CLOCK_THREAD_CPUTIME_ID captures the whole pipeline
  // including the ledger's write syscalls; CPU time instead of wall
  // because a 3% budget is far below wall-clock scheduler noise on small
  // CI machines. Each rep measures an adjacent off/on pair and the gate
  // takes the minimum of the per-pair ratios: pairing cancels slow
  // machine-wide drift (cache pressure, frequency scaling), and because
  // interrupt/cache noise on shared CI hardware is strictly additive, the
  // cleanest pair is the one closest to the true overhead floor — a mean
  // or median re-imports the noise a 3% budget cannot absorb.
  // The recorded runs write the ledger to ledger_path (last one wins —
  // iteration content is deterministic, so any of them is the valid CI
  // artifact; only the footer's timing fields vary).
  double recorder_overhead_ratio = 0.0;
  if (!ledger_path.empty()) {
    config.extract_threads = 1;
    const auto one_cpu = [&](bool record) {
      config.ledger_path = record ? ledger_path : std::string();
      config.record_iterations = record;
      CpuTimer timer;
      const PipelineResult result =
          AdaptiveExtractionPipeline::Run(context, config);
      IE_CHECK(result.processing_order == reference_order);
      return timer.ElapsedSeconds();
    };
    double unrecorded = 0.0;
    double recorded = 0.0;
    std::vector<double> ratios;
    for (int rep = 0; rep < 8; ++rep) {
      const double off = one_cpu(false);
      const double on = one_cpu(true);
      if (off > 0.0) ratios.push_back(on / off);
      if (unrecorded == 0.0 || off < unrecorded) unrecorded = off;
      if (recorded == 0.0 || on < recorded) recorded = on;
    }
    config.ledger_path.clear();
    config.record_iterations = false;
    if (!ratios.empty()) {
      recorder_overhead_ratio = *std::min_element(ratios.begin(), ratios.end());
    }
    std::fprintf(stderr,
                 "[bench_extract] recorder overhead: off=%.3fs on=%.3fs "
                 "min-pair cpu ratio=%.3f (ledger -> %s)\n",
                 unrecorded, recorded, recorder_overhead_ratio,
                 ledger_path.c_str());
  }

  // Prometheus exposition of the serial run's metrics snapshot.
  if (!metrics_out_path.empty()) {
    std::FILE* prom = std::fopen(metrics_out_path.c_str(), "w");
    if (prom == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out_path.c_str());
      return 2;
    }
    const std::string text = serial_metrics.ToPrometheus();
    std::fwrite(text.data(), 1, text.size(), prom);
    std::fclose(prom);
    std::fprintf(stderr, "[bench_extract] metrics exposition -> %s\n",
                 metrics_out_path.c_str());
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"extract\",\n  \"docs\": %zu,\n"
               "  \"pool\": %zu,\n  \"hardware_concurrency\": %u,\n"
               "  \"byte_identical\": %s,\n  \"runs\": [\n",
               num_docs, harness.test_pool().size(), hw,
               identical ? "true" : "false");
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunStats& stats = runs[i];
    std::fprintf(out,
                 "    {\"threads\": %zu, \"wall_seconds\": %.4f, "
                 "\"cpu_seconds\": %.4f, \"docs_per_sec\": %.1f, "
                 "\"speedup\": %.3f, \"hits\": %zu, \"waits\": %zu, "
                 "\"misses\": %zu, \"cancelled\": %zu}%s\n",
                 stats.threads, stats.wall_seconds, stats.cpu_seconds,
                 stats.docs_per_sec, stats.speedup, stats.hits, stats.waits,
                 stats.misses, stats.cancelled,
                 i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out,
               "  ],\n  \"speedup_at_8\": %.3f,\n  \"gate\": \"%s\",\n"
               "  \"trace_overhead_ratio\": %.3f,\n"
               "  \"recorder_overhead_ratio\": %.3f,\n",
               speedup8,
               gate_applies ? (gate_passes ? "PASS" : "FAIL") : "SKIP",
               trace_overhead_ratio, recorder_overhead_ratio);
  std::fprintf(out, "%s\n}\n", MetricsJsonEntry(serial_metrics).c_str());
  std::fclose(out);

  if (!identical) return 1;
  if (!gate_passes) return 1;
  return 0;
}
