// Ablation — BAgg-IE committee size: the paper fixes the committee at
// three classifiers, noting that "additional classifiers would slightly
// improve performance at the expense of substantial overhead". This sweep
// measures ranking quality and per-run ranking CPU against committee size.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

int main() {
  Harness harness({RelationId::kPersonCharge});
  const RelationId relation = RelationId::kPersonCharge;
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf(
      "\nAblation: BAgg-IE committee size (Person-Charge, adaptive "
      "SRS+Mod-C)\n");
  std::printf("%-10s %10s %10s %16s\n", "members", "AP%", "AUC%",
              "ranking CPU (s)");

  for (const size_t members : {1UL, 3UL, 5UL, 7UL}) {
    const AggregateMetrics agg = RunExperiment(
        "cfg", seeds, [&](size_t run) {
          PipelineConfig config = PipelineConfig::Defaults(
              RankerKind::kBAggIE, SamplerKind::kSRS, UpdateKind::kModC,
              RunSeed(2100 + members, run));
          config.sample_size = sample;
          config.bagg.bagging.committee_size = members;
          return AdaptiveExtractionPipeline::Run(
              harness.Context(relation), config);
        });
    std::printf("%-10zu %10.1f %10.1f %16.2f\n", members,
                100.0 * agg.ap_mean, 100.0 * agg.auc_mean,
                agg.ranking_cpu_seconds_mean);
  }
  return 0;
}
