// Figure 8 — average recall for Election–Winner under different update
// detection methods (Wind-F, Feat-S, Top-K, Mod-C) with RSVM-IE and SRS
// sampling, full-access scenario.
//
// Expected shape (paper): Feat-S trails the others (it stops updating once
// its kernel-based notion of the feature distribution stabilizes); Top-K
// and Mod-C beat Wind-F, most visibly early in the extraction.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

int main() {
  Harness harness({RelationId::kElectionWinner});
  const RelationId relation = RelationId::kElectionWinner;
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf(
      "\nFigure 8: average recall (%%) for Election-Winner by update "
      "method (RSVM-IE, SRS)\n");
  std::printf("%-28s", "processed %:");
  for (int p = 10; p <= 100; p += 10) std::printf(" %6d", p);
  std::printf("\n");

  auto run = [&](RankerKind kind, UpdateKind update, const char* label,
                 uint64_t base_seed) {
    const AggregateMetrics agg = RunExperiment(
        label, seeds, [&](size_t r) {
          PipelineConfig config = PipelineConfig::Defaults(
              kind, SamplerKind::kSRS, update, RunSeed(base_seed, r));
          config.sample_size = sample;
          return AdaptiveExtractionPipeline::Run(
              harness.Context(relation), config);
        });
    PrintCurveWithUpdates(agg);
  };

  run(RankerKind::kRandom, UpdateKind::kNone, "Random Ranking", 800);
  run(RankerKind::kPerfect, UpdateKind::kNone, "Perfect Ranking", 801);
  run(RankerKind::kRSVMIE, UpdateKind::kWindF, "Wind-F RSVM-IE", 810);
  run(RankerKind::kRSVMIE, UpdateKind::kFeatS, "Feat-S RSVM-IE", 811);
  run(RankerKind::kRSVMIE, UpdateKind::kTopK, "Top-K RSVM-IE", 812);
  run(RankerKind::kRSVMIE, UpdateKind::kModC, "Mod-C RSVM-IE", 813);
  return 0;
}
