// Figure 9 — distribution of model updates across the extraction process
// (deciles of processed documents) for each update detection technique,
// Election–Winner with RSVM-IE. Also reports the feature churn per update
// (the paper: Top-K/Mod-C incorporate a consistent ~10% of new features
// per update, whereas Wind-F's updates become insignificant late).
//
// Expected shape (paper): Top-K and Mod-C concentrate updates in the first
// deciles and perform fewer updates overall than Wind-F (50, uniform).
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

int main() {
  Harness harness({RelationId::kElectionWinner});
  const RelationId relation = RelationId::kElectionWinner;
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf(
      "\nFigure 9: update distribution per decile of the extraction "
      "(Election-Winner, RSVM-IE)\n");
  std::printf("%-10s %6s |", "method", "total");
  for (int d = 10; d <= 100; d += 10) std::printf(" %4d%%", d);
  std::printf(" | feat added/update\n");

  for (const auto& [update, label] :
       std::vector<std::pair<UpdateKind, const char*>>{
           {UpdateKind::kWindF, "Wind-F"},
           {UpdateKind::kFeatS, "Feat-S"},
           {UpdateKind::kTopK, "Top-K"},
           {UpdateKind::kModC, "Mod-C"}}) {
    double deciles[10] = {0};
    double total = 0.0;
    double features_added = 0.0, updates_with_churn = 0.0;
    for (size_t r = 0; r < seeds; ++r) {
      PipelineConfig config = PipelineConfig::Defaults(
          RankerKind::kRSVMIE, SamplerKind::kSRS, update,
          RunSeed(900 + static_cast<uint64_t>(update), r));
      config.sample_size = sample;
      const PipelineResult result = AdaptiveExtractionPipeline::Run(
          harness.Context(relation), config);
      const double n = static_cast<double>(result.processing_order.size());
      for (size_t pos : result.update_positions) {
        const size_t d = std::min<size_t>(
            9, static_cast<size_t>(10.0 * static_cast<double>(pos) / n));
        deciles[d] += 1.0;
        total += 1.0;
      }
      for (size_t added : result.features_added_per_update) {
        features_added += static_cast<double>(added);
        updates_with_churn += 1.0;
      }
    }
    std::printf("%-10s %6.1f |", label,
                total / static_cast<double>(seeds));
    for (int d = 0; d < 10; ++d) {
      std::printf(" %5.1f", deciles[d] / static_cast<double>(seeds));
    }
    std::printf(" | %8.1f\n",
                updates_with_churn > 0.0 ? features_added / updates_with_churn
                                         : 0.0);
  }
  return 0;
}
