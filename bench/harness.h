// Experiment harness shared by the table/figure benches: builds the corpus,
// trains extractors, caches verdicts, prepares featurized pools, the
// test-split search index, CQS query lists (learned on an auxiliary corpus,
// the TREC substitute), and assembles PipelineContexts.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "bench_common.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "pipeline/factcrawl_pipeline.h"
#include "pipeline/pipeline.h"
#include "sampling/cqs_learning.h"

namespace ie::bench {

class Harness {
 public:
  explicit Harness(std::vector<RelationId> relations,
                   size_t num_docs = NumDocs())
      : world_(BuildWorld(relations, num_docs)),
        featurizer_(&world_.corpus.vocab()) {
    WallTimer timer;
    // Note: ComputeIdf + Featurizer::SetIdf are available, but idf-weighted
    // features overfit the small initial samples (rare terms dominate), so
    // the experiments use plain log-TF features; see the ablation bench.
    word_features_ = FeaturizePool(world_.corpus, featurizer_,
                                   SetupThreads());
    index_ = BuildPoolIndex(world_.corpus, world_.corpus.splits().test);
    std::fprintf(stderr, "[setup] features+index (%.1fs)\n",
                 timer.ElapsedSeconds());
  }

  World& world() { return world_; }
  Featurizer& featurizer() { return featurizer_; }
  const std::vector<DocId>& test_pool() const {
    return world_.corpus.splits().test;
  }

  /// Initial sample budget: ~6% of the pool. The paper's 2000-document
  /// sample over 1.09M documents carries ~35 positives for a ~1.8%-dense
  /// relation; this budget preserves that order of positives at bench
  /// scale (metrics are computed after the warmup prefix; see
  /// EvaluateRun).
  size_t SampleSize() const {
    return std::max<size_t>(300, test_pool().size() * 6 / 100);
  }

  /// CQS query lists for a relation (learned lazily on the aux corpus).
  const std::vector<std::vector<std::string>>& CqsLists(RelationId relation) {
    auto it = cqs_lists_.find(relation);
    if (it != cqs_lists_.end()) return it->second;
    EnsureAuxCorpus();
    WallTimer timer;
    ExtractionOutcomes aux_outcomes =
        ExtractionOutcomes::Compute(world_.system(relation), *aux_corpus_);
    CqsLearningOptions options;
    options.seed = 61 + static_cast<uint64_t>(relation);
    auto lists = LearnCqsQueryLists(*aux_corpus_, aux_outcomes,
                                    aux_featurizer_.value(), options);
    std::fprintf(stderr, "[setup] CQS lists for %s (%.1fs)\n",
                 GetRelation(relation).code.c_str(), timer.ElapsedSeconds());
    return cqs_lists_.emplace(relation, std::move(lists)).first->second;
  }

  /// Context over an arbitrary document pool (scalability experiments use
  /// prefixes of the test split). The pool vector must outlive the run.
  SharedContext SubsetContext(RelationId relation,
                                const std::vector<DocId>* pool) {
    SharedContext context = Context(relation);
    context.pool = pool;
    return context;
  }

  /// Time (minutes) a run needed to reach `target_recall`, charging the
  /// per-document extraction cost plus a proportional share of the
  /// measured ranking/detection overhead.
  static double MinutesToRecall(const PipelineResult& result,
                                double target_recall) {
    const size_t total = result.processing_order.size();
    if (total == 0) return 0.0;
    size_t docs = DocsToReachRecall(result.processed_useful,
                                    result.pool_useful, target_recall);
    docs = std::min(docs, total);
    const double frac =
        static_cast<double>(docs) / static_cast<double>(total);
    const double seconds =
        result.extraction_seconds * frac +
        (result.ranking_cpu_seconds + result.detector_cpu_seconds) * frac;
    return seconds / 60.0;
  }

  /// Assembled pipeline context. When `cqs_list` >= 0, wires that learned
  /// query list (needed by CQS sampling and by FactCrawl).
  SharedContext Context(RelationId relation, int cqs_list = -1) {
    SharedContext context;
    context.corpus = &world_.corpus;
    context.pool = &world_.corpus.splits().test;
    context.outcomes = &world_.outcome(relation);
    context.relation = &GetRelation(relation);
    context.featurizer = &featurizer_;
    context.word_features = &word_features_;
    context.index = &index_;
    if (cqs_list >= 0) {
      const auto& lists = CqsLists(relation);
      context.cqs_queries =
          &lists[static_cast<size_t>(cqs_list) % lists.size()];
    }
    return context;
  }

 private:
  void EnsureAuxCorpus() {
    if (aux_corpus_ != nullptr) return;
    WallTimer timer;
    GeneratorOptions options;
    options.num_documents = std::max<size_t>(4000, NumDocs() / 2);
    options.seed = 777;  // independent of the evaluation corpus
    options.shared_vocab = world_.corpus.shared_vocab();
    aux_corpus_ = std::make_unique<Corpus>(GenerateCorpus(options));
    aux_featurizer_.emplace(&aux_corpus_->vocab());
    std::fprintf(stderr, "[setup] aux (TREC-substitute) corpus: %zu docs (%.1fs)\n",
                 aux_corpus_->size(), timer.ElapsedSeconds());
  }

  World world_;
  Featurizer featurizer_;
  std::vector<SparseVector> word_features_;
  InvertedIndex index_;
  std::unique_ptr<Corpus> aux_corpus_;
  std::optional<Featurizer> aux_featurizer_;
  std::map<RelationId, std::vector<std::vector<std::string>>> cqs_lists_;
};

/// Seeds follow the paper's five-repetition protocol scaled by
/// IE_BENCH_SEEDS; run r of a configuration uses seed base + r.
inline uint64_t RunSeed(uint64_t base, size_t run) {
  return base * 1000003ULL + run * 7919ULL + 1;
}

}  // namespace ie::bench
