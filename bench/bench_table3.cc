// Table 3 — average CPU time to perform update detection per processed
// document, for each technique (paper: Wind-F 0.01 ms, Feat-S 5.72 ms,
// Top-K 1.89 ms, Mod-C 0.32 ms). Measured two ways: (a) end-to-end inside
// the pipeline (thread CPU time of detector->Observe, averaged over the
// run), and (b) a google-benchmark microbench of Observe() on a realistic
// document stream.
//
// Expected shape: Wind-F << Mod-C < Top-K < Feat-S.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

#include "harness.h"
#include "update/update_detector.h"

using namespace ie;
using namespace ie::bench;

namespace {

Harness* g_harness = nullptr;
std::vector<LabeledExample> g_stream;  // featurized doc stream
std::unique_ptr<DocumentRanker> g_ranker;

void BuildStream() {
  const RelationId relation = RelationId::kElectionWinner;
  const auto& pool = g_harness->test_pool();
  const auto& outcomes = g_harness->world().outcome(relation);
  SharedContext ctx = g_harness->Context(relation);
  // The stream mirrors what the pipeline feeds detectors: word features
  // with the extractor's usefulness verdicts.
  std::vector<LabeledExample> sample;
  for (size_t i = 0; i < 2000 && i < pool.size(); ++i) {
    const DocId id = pool[i];
    g_stream.push_back(
        {(*ctx.word_features)[id], outcomes.useful(id) ? 1 : -1});
    if (i < 400) sample.push_back(g_stream.back());
  }
  g_ranker = std::make_unique<RsvmIeRanker>();
  g_ranker->TrainInitial(sample);
}

std::unique_ptr<UpdateDetector> MakeDetector(const std::string& which) {
  if (which == "windf") return std::make_unique<WindFDetector>(1u << 30);
  if (which == "feats") return std::make_unique<FeatSDetector>();
  if (which == "topk") return std::make_unique<TopKDetector>();
  return std::make_unique<ModCDetector>();
}

void BM_UpdateDetector(benchmark::State& state, const std::string& which) {
  auto detector = MakeDetector(which);
  detector->OnModelUpdated(*g_ranker, g_stream);
  size_t i = 0;
  for (auto _ : state) {
    const LabeledExample& ex = g_stream[i++ % g_stream.size()];
    benchmark::DoNotOptimize(
        detector->Observe(ex.features, ex.label > 0, *g_ranker));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Harness harness({RelationId::kElectionWinner});
  g_harness = &harness;
  BuildStream();

  // (a) end-to-end per-document detector CPU time inside full runs.
  std::printf("\nTable 3: update-detection CPU time per document\n");
  std::printf("%-10s %14s\n", "method", "pipeline ms/doc");
  for (const auto& [update, label] :
       std::vector<std::pair<UpdateKind, const char*>>{
           {UpdateKind::kWindF, "Wind-F"},
           {UpdateKind::kFeatS, "Feat-S"},
           {UpdateKind::kTopK, "Top-K"},
           {UpdateKind::kModC, "Mod-C"}}) {
    PipelineConfig config = PipelineConfig::Defaults(
        RankerKind::kRSVMIE, SamplerKind::kSRS, update, 12345);
    config.sample_size = harness.SampleSize();
    const PipelineResult result = AdaptiveExtractionPipeline::Run(
        harness.Context(RelationId::kElectionWinner), config);
    std::printf("%-10s %14.3f\n", label,
                1e3 * result.detector_cpu_seconds /
                    static_cast<double>(result.processing_order.size()));
  }

  // (b) microbenchmarks of Observe().
  benchmark::RegisterBenchmark("Observe/Wind-F", BM_UpdateDetector, "windf");
  benchmark::RegisterBenchmark("Observe/Feat-S", BM_UpdateDetector, "feats");
  benchmark::RegisterBenchmark("Observe/Top-K", BM_UpdateDetector, "topk");
  benchmark::RegisterBenchmark("Observe/Mod-C", BM_UpdateDetector, "modc");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
