// Table 1 — "Relations for our experiments": useful-document count and
// density per relation over the test split, as judged by each relation's
// trained extraction system (paper: useful = produces >= 1 tuple).
// Also reports gold-vs-extractor agreement (document-level precision /
// recall of the extractor), which characterizes the substituted substrate.
#include <cstdio>

#include "bench_common.h"

int main() {
  using namespace ie;
  bench::World world = bench::BuildWorld(bench::AllRelationIds());
  const std::vector<DocId>& test = world.corpus.splits().test;

  std::printf("Table 1: Relations for our experiments (test split: %zu docs)\n",
              test.size());
  std::printf("%-38s %10s %8s %8s | %7s %7s | %8s\n", "Relation", "Useful",
              "Dens%", "Paper%", "DocPrec", "DocRec", "Cost s/d");
  for (size_t i = 0; i < world.relations.size(); ++i) {
    const RelationSpec& spec = GetRelation(world.relations[i]);
    const ExtractionOutcomes& outcomes = world.outcomes[i];
    const size_t useful = outcomes.CountUseful(test);

    // Document-level extractor quality vs gold annotations.
    size_t tp = 0, fp = 0, fn = 0;
    for (DocId id : test) {
      const bool gold = world.corpus.annotations(id).HasTupleFor(spec.id);
      const bool pred = outcomes.useful(id);
      tp += (gold && pred);
      fp += (!gold && pred);
      fn += (gold && !pred);
    }
    const double prec = tp + fp > 0 ? 100.0 * tp / (tp + fp) : 0.0;
    const double rec = tp + fn > 0 ? 100.0 * tp / (tp + fn) : 0.0;

    std::printf("%-38s %10zu %8.2f %8.2f | %6.1f%% %6.1f%% | %8.2f\n",
                (spec.name + " (" + spec.code + ")").c_str(), useful,
                100.0 * static_cast<double>(useful) /
                    static_cast<double>(test.size()),
                100.0 * spec.paper_density, prec, rec,
                spec.extraction_cost_seconds);
  }
  return 0;
}
