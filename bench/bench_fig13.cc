// Figure 13 — CPU time (minutes) to reach each target recall, for two
// relations with very different extraction speeds: (a) Natural
// Disaster–Location (~6 s/doc) and (b) Person–Organization Affiliation
// (~0.01 s/doc). Random vs adaptive BAgg-IE / RSVM-IE (CQS + Mod-C) vs FC
// and A-FC. Time = simulated extraction + measured ranking overhead.
//
// Expected shape (paper): for the slow extractor, ranking quality
// dominates and RSVM-IE wins everywhere; for the fast extractor, ranking
// overhead matters — A-FC's expensive re-ranking makes it worse than even
// the random ordering, while RSVM-IE stays best.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

namespace {

void RunPanel(Harness& harness, RelationId relation, const char* title) {
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf("\n%s: CPU time (min) to reach target recall, %s\n", title,
              GetRelation(relation).name.c_str());
  std::printf("%-28s", "recall %:");
  for (int p = 10; p <= 100; p += 10) std::printf(" %8d", p);
  std::printf("\n");

  auto print_minutes = [&](const char* label,
                           const std::function<PipelineResult(size_t)>& run) {
    double minutes[10] = {0};
    for (size_t r = 0; r < seeds; ++r) {
      const PipelineResult result = run(r);
      for (int i = 0; i < 10; ++i) {
        minutes[i] += Harness::MinutesToRecall(
                          result, static_cast<double>(i + 1) / 10.0) /
                      static_cast<double>(seeds);
      }
    }
    std::printf("%-28s", label);
    for (int i = 0; i < 10; ++i) std::printf(" %8.1f", minutes[i]);
    std::printf("\n");
  };

  print_minutes("Random Ranking", [&](size_t r) {
    PipelineConfig config = PipelineConfig::Defaults(
        RankerKind::kRandom, SamplerKind::kSRS, UpdateKind::kNone,
        RunSeed(1500, r));
    config.sample_size = sample;
    return AdaptiveExtractionPipeline::Run(harness.Context(relation),
                                           config);
  });
  for (const auto& [kind, label] :
       std::vector<std::pair<RankerKind, const char*>>{
           {RankerKind::kBAggIE, "BAgg-IE"},
           {RankerKind::kRSVMIE, "RSVM-IE"}}) {
    print_minutes(label, [&, kind = kind](size_t r) {
      PipelineConfig config = PipelineConfig::Defaults(
          kind, SamplerKind::kCQS, UpdateKind::kModC,
          RunSeed(1510 + static_cast<uint64_t>(kind), r));
      config.sample_size = sample;
      return AdaptiveExtractionPipeline::Run(
          harness.Context(relation, static_cast<int>(r)), config);
    });
  }
  for (const auto& [adaptive, label] :
       std::vector<std::pair<bool, const char*>>{{false, "FC"},
                                                 {true, "A-FC"}}) {
    print_minutes(label, [&, adaptive = adaptive](size_t r) {
      FactCrawlConfig config;
      config.adaptive = adaptive;
      config.sample_size = sample;
      config.seed = RunSeed(1520 + (adaptive ? 1 : 0), r);
      // The paper's A-FC re-ranks after every processed document; a short
      // interval preserves that cost profile at bench scale.
      config.rerank_interval = 25;
      return FactCrawlPipeline::Run(harness.Context(relation), config);
    });
  }
}

}  // namespace

int main() {
  Harness harness(
      {RelationId::kNaturalDisaster, RelationId::kPersonOrganization});
  RunPanel(harness, RelationId::kNaturalDisaster, "Figure 13a");
  RunPanel(harness, RelationId::kPersonOrganization, "Figure 13b");
  return 0;
}
