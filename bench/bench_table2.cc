// Table 2 — impact of document sampling (SRS vs CQS) on ranking quality
// for all seven relations, base vs adaptive RSVM-IE, full-access scenario.
// Reports average precision and AUC, mean ± stddev over seeds.
//
// Expected shape (paper): adaptive >> base on AUC for every relation; CQS
// beats SRS on average precision for sparse relations in base mode; the
// sampling gap nearly vanishes with adaptation; dense relations (PO, PC)
// gain little from CQS.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

int main() {
  Harness harness(AllRelationIds());
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf(
      "\nTable 2: sampling x adaptation for RSVM-IE (full access)\n"
      "%-5s | %-17s %-17s | %-17s %-17s | %-17s %-17s | %-17s %-17s\n",
      "Rel.", "BaseSRS AP", "BaseSRS AUC", "BaseCQS AP", "BaseCQS AUC",
      "AdptSRS AP", "AdptSRS AUC", "AdptCQS AP", "AdptCQS AUC");

  for (RelationId relation : AllRelationIds()) {
    std::printf("%-5s |", GetRelation(relation).code.c_str());
    for (const auto& [sampler, update] :
         std::vector<std::pair<SamplerKind, UpdateKind>>{
             {SamplerKind::kSRS, UpdateKind::kNone},
             {SamplerKind::kCQS, UpdateKind::kNone},
             {SamplerKind::kSRS, UpdateKind::kModC},
             {SamplerKind::kCQS, UpdateKind::kModC}}) {
      const AggregateMetrics agg = RunExperiment(
          "cfg", seeds, [&](size_t run) {
            PipelineConfig config = PipelineConfig::Defaults(
                RankerKind::kRSVMIE, sampler, update, RunSeed(400, run));
            config.sample_size = sample;
            const int cqs_list =
                sampler == SamplerKind::kCQS ? static_cast<int>(run) : -1;
            return AdaptiveExtractionPipeline::Run(
                harness.Context(relation, cqs_list), config);
          });
      std::printf(" %6.1f±%4.1f%% %6.1f±%4.1f%% |",
                  100.0 * agg.ap_mean, 100.0 * agg.ap_std,
                  100.0 * agg.auc_mean, 100.0 * agg.auc_std);
    }
    std::printf("\n");
  }
  return 0;
}
