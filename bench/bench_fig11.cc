// Figure 11 — average CPU time (minutes) to find and process a FIXED
// target number of useful documents (the number of useful documents in
// the 10% subset) for Person–Organization Affiliation, as the collection
// grows from 10% to 100% of the test split. Adaptive BAgg-IE and RSVM-IE
// (SRS + Mod-C).
//
// Expected shape (paper): time drops sharply as the collection grows
// (more useful documents near the top of the ranking), then flattens.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

namespace {

double MinutesToUsefulCount(const PipelineResult& result, size_t target) {
  const size_t total = result.processing_order.size();
  size_t found = 0;
  size_t docs = total;
  for (size_t i = 0; i < total; ++i) {
    found += result.processed_useful[i];
    if (found >= target) {
      docs = i + 1;
      break;
    }
  }
  const double frac =
      static_cast<double>(docs) / static_cast<double>(total);
  return (result.extraction_seconds * frac +
          (result.ranking_cpu_seconds + result.detector_cpu_seconds) *
              frac) /
         60.0;
}

}  // namespace

int main() {
  Harness harness({RelationId::kPersonOrganization});
  const RelationId relation = RelationId::kPersonOrganization;
  const size_t seeds = NumSeeds();
  const auto& full_pool = harness.test_pool();
  const auto& outcomes = harness.world().outcome(relation);

  // Target = useful documents in the 10% subset.
  const std::vector<DocId> subset10(
      full_pool.begin(), full_pool.begin() + full_pool.size() / 10);
  const size_t target = outcomes.CountUseful(subset10);

  std::printf(
      "\nFigure 11: CPU time (min) to find %zu useful documents, "
      "Person-Organization, vs collection size\n",
      target);
  std::printf("%-8s %12s %12s\n", "size%", "BAgg-IE", "RSVM-IE");

  for (size_t pct = 10; pct <= 100; pct += 10) {
    const size_t n = full_pool.size() * pct / 100;
    const std::vector<DocId> pool(full_pool.begin(),
                                  full_pool.begin() + n);
    double minutes[2] = {0, 0};
    int col = 0;
    for (RankerKind kind : {RankerKind::kBAggIE, RankerKind::kRSVMIE}) {
      for (size_t run = 0; run < seeds; ++run) {
        PipelineConfig config = PipelineConfig::Defaults(
            kind, SamplerKind::kSRS, UpdateKind::kModC,
            RunSeed(1100 + pct, run));
        config.sample_size =
            std::max<size_t>(150, pool.size() * 6 / 100);
        const PipelineResult result = AdaptiveExtractionPipeline::Run(
            harness.SubsetContext(relation, &pool), config);
        minutes[col] += MinutesToUsefulCount(result, target) /
                        static_cast<double>(seeds);
      }
      ++col;
    }
    std::printf("%-8zu %12.2f %12.2f\n", pct, minutes[0], minutes[1]);
  }
  return 0;
}
