// Scale bench for the million-document index stack (DESIGN.md §13):
// streams a corpus straight to the on-disk format, builds both SearchIndex
// backends from the mapped file, and reports build throughput, query
// throughput and resident postings memory per tier, re-proving
// byte-identical SearchHit output between InvertedIndex and CompactIndex
// at every tier along the way.
//
// Not a google-benchmark microbench: the unit of work is an entire
// generate → write → build → query pass per corpus size, and results are
// emitted as JSON for CI trend tracking.
//
//   bench_index [--docs=10000,100000,1000000] [--out=BENCH_index.json]
//               [--tmp=/tmp] [--build-threads=1,2,4]
//
// --build-threads sweeps CompactIndex::Finalize over thread counts: each
// count rebuilds the compact backend and re-proves the sharded parallel
// encode is byte-identical to the serial one (same compressed bytes, same
// hits) while reporting the finalize wall time per count.
//
// Environment knobs: IE_BENCH_DOCS replaces the tier list with a single
// tier (the CI smoke runs IE_BENCH_DOCS=4000).
//
// Acceptance gate: at tiers >= 1M documents the compact backend must hold
// its postings in >= 4x less resident memory than InvertedIndex
// (PostingsBytes ratio). Tiers whose estimated RAM/disk footprint does not
// fit the host are reported as "skipped" instead of run — the gate then
// reports SKIP, never a false FAIL.
#include <sys/statvfs.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "common/timer.h"
#include "corpus/corpus_io.h"
#include "corpus/generator.h"
#include "harness.h"
#include "index/compact_index.h"
#include "index/inverted_index.h"

using namespace ie;
using namespace ie::bench;

namespace {

// Conservative per-document footprint estimates (measured ~172 tokens and
// ~150 distinct terms per generated document) used only to decide whether
// a tier fits the host at all.
constexpr size_t kRamBytesPerDoc = 4096;   // both backends + staging, peak
constexpr size_t kDiskBytesPerDoc = 1500;  // corpus file record + tables
constexpr size_t kQueriesPerTier = 200;
constexpr size_t kRatioGateDocs = 1000000;
constexpr double kRatioGate = 4.0;

struct BackendStats {
  double build_seconds = 0.0;
  double build_docs_per_sec = 0.0;
  size_t postings_bytes = 0;
  double qps_k10 = 0.0;
  double qps_k100 = 0.0;
};

struct FinalizeSweepPoint {
  size_t threads = 0;
  double finalize_seconds = 0.0;
  bool identical = true;  // same compressed bytes + hits as the serial build
};

struct TierStats {
  size_t docs = 0;
  bool skipped = false;       // did not fit the host; never ran
  size_t file_bytes = 0;
  double gen_write_seconds = 0.0;
  double gen_docs_per_sec = 0.0;
  size_t num_postings = 0;
  BackendStats inverted;
  BackendStats compact;
  double compression_ratio = 0.0;  // inverted postings bytes / compact
  bool identical = true;           // SearchHit byte-identity over queries
  std::vector<FinalizeSweepPoint> finalize_sweep;
};

std::vector<size_t> ParseDocsList(const std::string& csv) {
  std::vector<size_t> docs;
  size_t pos = 0;
  while (pos < csv.size()) {
    size_t comma = csv.find(',', pos);
    if (comma == std::string::npos) comma = csv.size();
    const long value = std::atol(csv.substr(pos, comma - pos).c_str());
    if (value > 0) docs.push_back(static_cast<size_t>(value));
    pos = comma + 1;
  }
  return docs;
}

size_t MemAvailableBytes() {
  std::FILE* f = std::fopen("/proc/meminfo", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    unsigned long long value = 0;
    if (std::sscanf(line, "MemAvailable: %llu kB", &value) == 1) {
      kib = static_cast<size_t>(value);
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

size_t DiskFreeBytes(const std::string& dir) {
  struct statvfs vfs;
  if (statvfs(dir.c_str(), &vfs) != 0) return 0;
  return static_cast<size_t>(vfs.f_bavail) *
         static_cast<size_t>(vfs.f_frsize);
}

/// Deterministic query workload: terms drawn from actual document bodies
/// (so posting lists of realistic lengths are exercised), 1-4 terms per
/// query with occasional duplicates to keep the dedup path hot.
std::vector<std::vector<TokenId>> MakeQueries(const CorpusReader& reader) {
  Rng rng(0x1d0c5ca1eULL);
  std::vector<std::vector<TokenId>> queries;
  queries.reserve(kQueriesPerTier);
  Document doc;
  while (queries.size() < kQueriesPerTier) {
    const DocId id =
        static_cast<DocId>(rng.NextBounded(reader.NumDocs()));
    IE_CHECK(reader.ReadDoc(id, &doc).ok());
    std::vector<TokenId> terms;
    const size_t num_terms = 1 + rng.NextBounded(4);
    for (size_t t = 0; t < num_terms; ++t) {
      const auto& sent =
          doc.sentences[rng.NextBounded(doc.sentences.size())];
      if (sent.tokens.empty()) continue;
      terms.push_back(sent.tokens[rng.NextBounded(sent.tokens.size())]);
    }
    if (terms.empty()) continue;
    if (rng.NextBool(0.2)) terms.push_back(terms.front());  // duplicate
    queries.push_back(std::move(terms));
  }
  return queries;
}

bool SameHits(const std::vector<SearchHit>& a,
              const std::vector<SearchHit>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    uint32_t bits_a = 0;
    uint32_t bits_b = 0;
    std::memcpy(&bits_a, &a[i].score, sizeof(bits_a));
    std::memcpy(&bits_b, &b[i].score, sizeof(bits_b));
    if (a[i].doc != b[i].doc || bits_a != bits_b) return false;
  }
  return true;
}

double QueriesPerSecond(const SearchIndex& index,
                        const std::vector<std::vector<TokenId>>& queries,
                        size_t k) {
  // Volatile sink so the searches cannot be optimized away.
  volatile size_t sink = 0;
  WallTimer timer;
  for (const auto& query : queries) {
    sink = sink + index.Search(query, k).size();
  }
  const double wall = timer.ElapsedSeconds();
  return wall > 0.0 ? static_cast<double>(queries.size()) / wall : 0.0;
}

void PrintBackendJson(std::FILE* out, const char* name,
                      const BackendStats& stats, const char* trailer) {
  std::fprintf(out,
               "      \"%s\": {\"build_seconds\": %.3f, "
               "\"build_docs_per_sec\": %.0f, \"postings_bytes\": %zu, "
               "\"qps_k10\": %.1f, \"qps_k100\": %.1f}%s\n",
               name, stats.build_seconds, stats.build_docs_per_sec,
               stats.postings_bytes, stats.qps_k10, stats.qps_k100,
               trailer);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<size_t> tiers = {10000, 100000, 1000000};
  std::vector<size_t> build_threads = {1, 2, 4};
  std::string out_path = "BENCH_index.json";
  const char* tmpdir_env = std::getenv("TMPDIR");
  std::string tmp_dir = tmpdir_env != nullptr ? tmpdir_env : "/tmp";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--docs=", 0) == 0) {
      tiers = ParseDocsList(arg.substr(7));
    } else if (arg.rfind("--build-threads=", 0) == 0) {
      build_threads = ParseDocsList(arg.substr(16));
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--tmp=", 0) == 0) {
      tmp_dir = arg.substr(6);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  if (std::getenv("IE_BENCH_DOCS") != nullptr) {
    tiers = {EnvSize("IE_BENCH_DOCS", 10000)};
  }

  bool all_identical = true;
  std::vector<TierStats> results;
  for (size_t docs : tiers) {
    TierStats tier;
    tier.docs = docs;

    const size_t ram_free = MemAvailableBytes();
    const size_t disk_free = DiskFreeBytes(tmp_dir);
    if ((ram_free > 0 && docs * kRamBytesPerDoc > ram_free) ||
        (disk_free > 0 && docs * kDiskBytesPerDoc > disk_free)) {
      std::fprintf(stderr,
                   "[bench_index] docs=%zu SKIP (needs ~%zu MB RAM / "
                   "~%zu MB disk; host has %zu MB / %zu MB free)\n",
                   docs, docs * kRamBytesPerDoc >> 20,
                   docs * kDiskBytesPerDoc >> 20, ram_free >> 20,
                   disk_free >> 20);
      tier.skipped = true;
      results.push_back(tier);
      continue;
    }

    const std::string path =
        tmp_dir + "/bench_index_" + std::to_string(docs) + ".iecp";

    // Phase 1: stream-generate straight to disk — one document resident
    // at a time, exactly the path a real million-document corpus takes.
    {
      GeneratorOptions options;
      options.num_documents = docs;
      WallTimer timer;
      const auto written = WriteGeneratedCorpus(options, path);
      IE_CHECK(written.ok());
      tier.gen_write_seconds = timer.ElapsedSeconds();
    }
    tier.gen_docs_per_sec =
        tier.gen_write_seconds > 0.0
            ? static_cast<double>(docs) / tier.gen_write_seconds
            : 0.0;

    auto reader_or = CorpusReader::Open(path);
    IE_CHECK(reader_or.ok());
    const CorpusReader& reader = *reader_or;
    {
      std::FILE* f = std::fopen(path.c_str(), "rb");
      IE_CHECK(f != nullptr);
      std::fseek(f, 0, SEEK_END);
      tier.file_bytes = static_cast<size_t>(std::ftell(f));
      std::fclose(f);
    }

    // Phase 2: build each backend from the mapped file.
    InvertedIndex inverted;
    {
      Document doc;
      WallTimer timer;
      for (DocId id = 0; id < reader.NumDocs(); ++id) {
        IE_CHECK(reader.ReadDoc(id, &doc).ok());
        IE_CHECK(inverted.Add(doc).ok());
      }
      tier.inverted.build_seconds = timer.ElapsedSeconds();
    }
    CompactIndex compact;
    double primary_finalize_seconds = 0.0;
    {
      Document doc;
      WallTimer timer;
      for (DocId id = 0; id < reader.NumDocs(); ++id) {
        IE_CHECK(reader.ReadDoc(id, &doc).ok());
        IE_CHECK(compact.Add(doc).ok());
      }
      WallTimer finalize_timer;
      compact.Finalize();
      primary_finalize_seconds = finalize_timer.ElapsedSeconds();
      tier.compact.build_seconds = timer.ElapsedSeconds();
    }
    for (BackendStats* stats : {&tier.inverted, &tier.compact}) {
      stats->build_docs_per_sec =
          stats->build_seconds > 0.0
              ? static_cast<double>(docs) / stats->build_seconds
              : 0.0;
    }
    tier.num_postings = inverted.NumPostings();
    tier.inverted.postings_bytes = inverted.PostingsBytes();
    tier.compact.postings_bytes = compact.PostingsBytes();
    tier.compression_ratio =
        tier.compact.postings_bytes > 0
            ? static_cast<double>(tier.inverted.postings_bytes) /
                  static_cast<double>(tier.compact.postings_bytes)
            : 0.0;

    // Phase 3: equivalence sweep (untimed), then timed query throughput.
    const auto queries = MakeQueries(reader);
    for (const auto& query : queries) {
      for (size_t k : {10u, 100u}) {
        if (!SameHits(inverted.Search(query, k), compact.Search(query, k))) {
          tier.identical = false;
          all_identical = false;
          std::fprintf(stderr,
                       "FAIL: backends disagree at docs=%zu k=%zu\n", docs,
                       k);
          break;
        }
      }
      if (!tier.identical) break;
    }
    tier.inverted.qps_k10 = QueriesPerSecond(inverted, queries, 10);
    tier.inverted.qps_k100 = QueriesPerSecond(inverted, queries, 100);
    tier.compact.qps_k10 = QueriesPerSecond(compact, queries, 10);
    tier.compact.qps_k100 = QueriesPerSecond(compact, queries, 100);

    // Finalize-threads sweep: rebuild the compact backend per thread count
    // and re-prove the parallel sharded encode is byte-identical to the
    // serial one (same compressed size, same hits).
    tier.finalize_sweep.push_back({1, primary_finalize_seconds, true});
    for (size_t threads : build_threads) {
      if (threads <= 1) continue;
      CompactIndex swept;
      {
        Document doc;
        for (DocId id = 0; id < reader.NumDocs(); ++id) {
          IE_CHECK(reader.ReadDoc(id, &doc).ok());
          IE_CHECK(swept.Add(doc).ok());
        }
      }
      FinalizeSweepPoint point;
      point.threads = threads;
      {
        WallTimer timer;
        swept.Finalize(threads);
        point.finalize_seconds = timer.ElapsedSeconds();
      }
      point.identical = swept.PostingsBytes() == compact.PostingsBytes();
      for (const auto& query : queries) {
        if (!point.identical) break;
        if (!SameHits(compact.Search(query, 10), swept.Search(query, 10))) {
          point.identical = false;
        }
      }
      if (!point.identical) {
        all_identical = false;
        std::fprintf(stderr,
                     "FAIL: parallel finalize differs at docs=%zu "
                     "threads=%zu\n",
                     docs, threads);
      }
      std::fprintf(stderr,
                   "[bench_index] docs=%zu finalize threads=%zu %.2fs "
                   "(serial %.2fs) identical=%s\n",
                   docs, threads, point.finalize_seconds,
                   primary_finalize_seconds,
                   point.identical ? "yes" : "NO");
      tier.finalize_sweep.push_back(point);
    }

    std::fprintf(stderr,
                 "[bench_index] docs=%zu gen=%.1fs (%.0f docs/s) "
                 "file=%zuMB postings=%zu inverted{build=%.1fs mem=%zuMB "
                 "qps@10=%.0f} compact{build=%.1fs mem=%zuMB qps@10=%.0f} "
                 "ratio=%.2fx identical=%s\n",
                 docs, tier.gen_write_seconds, tier.gen_docs_per_sec,
                 tier.file_bytes >> 20, tier.num_postings,
                 tier.inverted.build_seconds,
                 tier.inverted.postings_bytes >> 20, tier.inverted.qps_k10,
                 tier.compact.build_seconds,
                 tier.compact.postings_bytes >> 20, tier.compact.qps_k10,
                 tier.compression_ratio, tier.identical ? "yes" : "NO");

    std::remove(path.c_str());
    results.push_back(tier);
  }

  // Acceptance: >= 4x postings-memory reduction at the million-doc tier.
  bool gate_applies = false;
  bool gate_passes = true;
  for (const TierStats& tier : results) {
    if (tier.skipped || tier.docs < kRatioGateDocs) continue;
    gate_applies = true;
    if (tier.compression_ratio < kRatioGate) gate_passes = false;
  }
  std::fprintf(stderr, "[bench_index] compression gate (>=%.1fx at %zu docs): %s\n",
               kRatioGate, kRatioGateDocs,
               gate_applies ? (gate_passes ? "PASS" : "FAIL")
                            : "SKIP (no million-doc tier ran)");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"index\",\n  \"byte_identical\": %s,\n"
               "  \"tiers\": [\n",
               all_identical ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const TierStats& tier = results[i];
    if (tier.skipped) {
      std::fprintf(out, "    {\"docs\": %zu, \"skipped\": true}%s\n",
                   tier.docs, i + 1 < results.size() ? "," : "");
      continue;
    }
    std::fprintf(out,
                 "    {\"docs\": %zu, \"skipped\": false,\n"
                 "      \"gen_write_seconds\": %.3f, "
                 "\"gen_docs_per_sec\": %.0f,\n"
                 "      \"corpus_file_bytes\": %zu, "
                 "\"num_postings\": %zu,\n",
                 tier.docs, tier.gen_write_seconds, tier.gen_docs_per_sec,
                 tier.file_bytes, tier.num_postings);
    PrintBackendJson(out, "inverted", tier.inverted, ",");
    PrintBackendJson(out, "compact", tier.compact, ",");
    std::fprintf(out, "      \"finalize_sweep\": [");
    for (size_t s = 0; s < tier.finalize_sweep.size(); ++s) {
      const FinalizeSweepPoint& point = tier.finalize_sweep[s];
      std::fprintf(out,
                   "%s{\"threads\": %zu, \"finalize_seconds\": %.3f, "
                   "\"identical\": %s}",
                   s > 0 ? ", " : "", point.threads, point.finalize_seconds,
                   point.identical ? "true" : "false");
    }
    std::fprintf(out, "],\n");
    std::fprintf(out,
                 "      \"compression_ratio\": %.3f, \"identical\": %s}%s\n",
                 tier.compression_ratio, tier.identical ? "true" : "false",
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"compression_gate\": \"%s\"\n}\n",
               gate_applies ? (gate_passes ? "PASS" : "FAIL") : "SKIP");
  std::fclose(out);

  if (!all_identical) return 1;
  if (gate_applies && !gate_passes) return 1;
  return 0;
}
