// Ablation — document access scenario: full access vs the search-interface
// scenario (paper Section 4, "Document Access"). In search-interface mode
// the pipeline only reaches documents retrieved by keyword queries (initial
// QXtract queries plus per-update model-feature queries), so recall climbs
// via retrieval waves and the comparison shows what the interface costs.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

int main() {
  Harness harness(
      {RelationId::kNaturalDisaster, RelationId::kPersonCharge});
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  for (RelationId relation :
       {RelationId::kNaturalDisaster, RelationId::kPersonCharge}) {
    std::printf(
        "\nAblation: access scenario for %s (RSVM-IE, SRS + Mod-C)\n",
        GetRelation(relation).name.c_str());
    std::printf("%-28s", "processed %:");
    for (int p = 10; p <= 100; p += 10) std::printf(" %6d", p);
    std::printf("\n");

    for (const auto& [access, label] :
         std::vector<std::pair<AccessMode, const char*>>{
             {AccessMode::kFullAccess, "full access"},
             {AccessMode::kSearchInterface, "search interface"}}) {
      const AggregateMetrics agg = RunExperiment(
          label, seeds, [&, access = access](size_t run) {
            PipelineConfig config = PipelineConfig::Defaults(
                RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC,
                RunSeed(2200, run));
            config.sample_size = sample;
            config.access = access;
            return AdaptiveExtractionPipeline::Run(
                harness.Context(relation), config);
          });
      PrintCurveWithUpdates(agg);
    }
  }
  return 0;
}
