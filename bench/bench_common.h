// Shared setup for the benchmark harnesses: corpus/extractor construction
// with environment-tunable scale, and paper-style table printing helpers.
//
// Environment knobs:
//   IE_BENCH_DOCS   corpus size           (default 20000)
//   IE_BENCH_SEEDS  runs per configuration (default 3; paper uses 5)
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "corpus/generator.h"
#include "extract/extraction_system.h"

namespace ie::bench {

inline size_t EnvSize(const char* name, size_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr) return fallback;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<size_t>(parsed) : fallback;
}

inline size_t NumDocs() { return EnvSize("IE_BENCH_DOCS", 20000); }
inline size_t NumSeeds() { return EnvSize("IE_BENCH_SEEDS", 3); }

/// Threads for setup-phase parallel work (outcome computation, pool
/// featurization). Results are identical to serial; this only shortens
/// bench setup on multi-core hosts.
inline size_t SetupThreads() {
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

/// Corpus + trained systems + cached outcomes for a set of relations.
struct World {
  Corpus corpus;
  std::vector<RelationId> relations;
  std::vector<std::unique_ptr<ExtractionSystem>> systems;   // by relation idx
  std::vector<ExtractionOutcomes> outcomes;                 // by relation idx

  const ExtractionSystem& system(RelationId id) const {
    for (size_t i = 0; i < relations.size(); ++i) {
      if (relations[i] == id) return *systems[i];
    }
    IE_CHECK(false);
    return *systems[0];
  }
  const ExtractionOutcomes& outcome(RelationId id) const {
    for (size_t i = 0; i < relations.size(); ++i) {
      if (relations[i] == id) return outcomes[i];
    }
    IE_CHECK(false);
    return outcomes[0];
  }
};

inline World BuildWorld(const std::vector<RelationId>& relations,
                        size_t num_docs = NumDocs(), uint64_t seed = 42) {
  World world;
  WallTimer timer;
  GeneratorOptions options;
  options.num_documents = num_docs;
  options.seed = seed;
  world.corpus = GenerateCorpus(options);
  std::fprintf(stderr, "[setup] corpus: %zu docs, vocab %zu (%.1fs)\n",
               world.corpus.size(), world.corpus.vocab().size(),
               timer.ElapsedSeconds());
  world.relations = relations;
  for (RelationId relation : relations) {
    timer.Restart();
    world.systems.push_back(
        TrainExtractionSystem(relation, world.corpus.shared_vocab()));
    world.outcomes.push_back(ExtractionOutcomes::Compute(
        *world.systems.back(), world.corpus, SetupThreads()));
    std::fprintf(stderr, "[setup] %s extractor trained+run (%.1fs)\n",
                 GetRelation(relation).code.c_str(),
                 timer.ElapsedSeconds());
  }
  return world;
}

/// The shared `"metrics"` entry every BENCH_*.json writer appends to its
/// top-level object: a run's MetricsSnapshot pretty-printed under one
/// uniform key, so CI trend tooling reads observability data the same way
/// across benches. `indent` is the key's leading indentation; nested lines
/// indent from there (see MetricsSnapshot::AppendJson).
inline std::string MetricsJsonEntry(const MetricsSnapshot& metrics,
                                    int indent = 2) {
  std::string entry(static_cast<size_t>(indent), ' ');
  entry += "\"metrics\": ";
  metrics.AppendJson(&entry, indent);
  return entry;
}

inline std::vector<RelationId> AllRelationIds() {
  std::vector<RelationId> ids;
  for (const RelationSpec& spec : AllRelations()) ids.push_back(spec.id);
  return ids;
}

}  // namespace ie::bench
