// Figures 6 & 7 — impact of sampling strategy (SRS vs CQS) and of
// adaptation, for Man Made Disaster–Location in the full-access scenario.
// Fig 6: RSVM-IE; Fig 7: BAgg-IE. Four configurations each: Base/Adaptive
// × SRS/CQS (adaptive = Mod-C update detection).
//
// Expected shape (paper): adaptation dominates (e.g. ~70% recall at 10%
// processed vs 40-50% for base); CQS > SRS for the base versions of this
// sparse relation; the sampling gap nearly vanishes once adaptive.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

namespace {

void RunFigure(Harness& harness, RankerKind ranker, const char* figure) {
  const RelationId relation = RelationId::kManMadeDisaster;
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf("\n%s: average recall (%%) for Man Made Disaster-Location, %s\n",
              figure, RankerKindName(ranker));
  std::printf("%-28s", "processed %:");
  for (int p = 10; p <= 100; p += 10) std::printf(" %6d", p);
  std::printf("\n");

  auto run = [&](RankerKind kind, SamplerKind samp, UpdateKind update,
                 const char* label, uint64_t base_seed) {
    const AggregateMetrics agg = RunExperiment(
        label, seeds, [&](size_t r) {
          PipelineConfig config = PipelineConfig::Defaults(
              kind, samp, update, RunSeed(base_seed, r));
          config.sample_size = sample;
          const int cqs_list =
              samp == SamplerKind::kCQS ? static_cast<int>(r) : -1;
          return AdaptiveExtractionPipeline::Run(
              harness.Context(relation, cqs_list), config);
        });
    PrintCurveWithUpdates(agg);
  };

  run(RankerKind::kRandom, SamplerKind::kSRS, UpdateKind::kNone,
      "Random Ranking", 300);
  run(RankerKind::kPerfect, SamplerKind::kSRS, UpdateKind::kNone,
      "Perfect Ranking", 301);
  run(ranker, SamplerKind::kSRS, UpdateKind::kNone, "Base SRS", 310);
  run(ranker, SamplerKind::kCQS, UpdateKind::kNone, "Base CQS", 311);
  run(ranker, SamplerKind::kSRS, UpdateKind::kModC, "Adaptive SRS", 312);
  run(ranker, SamplerKind::kCQS, UpdateKind::kModC, "Adaptive CQS", 313);
}

}  // namespace

int main() {
  Harness harness({RelationId::kManMadeDisaster});
  RunFigure(harness, RankerKind::kRSVMIE, "Figure 6");
  RunFigure(harness, RankerKind::kBAggIE, "Figure 7");
  return 0;
}
