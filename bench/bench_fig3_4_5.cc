// Figures 3, 4, 5 — average recall vs. % processed documents for the BASE
// (non-adaptive) ranking-generation techniques against FactCrawl, with the
// random and perfect orderings as references. Paper relations: Fig 3 =
// Person-Charge, Fig 4 = Disease-Outbreak (sparse), Fig 5 = Person-Career
// (dense). Full-access scenario, SRS sampling, no adaptation.
//
// Expected shape (paper): RSVM-IE and BAgg-IE consistently above FC;
// RSVM-IE stronger early and on sparse relations; BAgg-IE catches up (or
// wins) late on non-sparse relations.
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

namespace {

void RunFigure(Harness& harness, RelationId relation, const char* figure) {
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();
  std::printf("\n%s: average recall (%%) for %s, base rankers, full access\n",
              figure, GetRelation(relation).name.c_str());
  std::printf("%-28s", "processed %:");
  for (int p = 10; p <= 100; p += 10) std::printf(" %6d", p);
  std::printf("\n");

  auto run_ranker = [&](RankerKind kind, const char* label) {
    const AggregateMetrics agg = RunExperiment(
        label, seeds, [&](size_t run) {
          PipelineConfig config = PipelineConfig::Defaults(
              kind, SamplerKind::kSRS, UpdateKind::kNone,
              RunSeed(static_cast<uint64_t>(kind) + 10, run));
          config.sample_size = sample;
          return AdaptiveExtractionPipeline::Run(
              harness.Context(relation), config);
        });
    PrintCurve(agg);
  };

  run_ranker(RankerKind::kRandom, "Random Ranking");
  run_ranker(RankerKind::kPerfect, "Perfect Ranking");
  run_ranker(RankerKind::kBAggIE, "BAgg-IE");
  run_ranker(RankerKind::kRSVMIE, "RSVM-IE");

  const AggregateMetrics fc = RunExperiment(
      "FC", seeds, [&](size_t run) {
        FactCrawlConfig config;
        config.adaptive = false;
        config.sample_size = sample;
        config.seed = RunSeed(99, run);
        return FactCrawlPipeline::Run(harness.Context(relation), config);
      });
  PrintCurve(fc);
}

}  // namespace

int main() {
  Harness harness({RelationId::kPersonCharge, RelationId::kDiseaseOutbreak,
                   RelationId::kPersonCareer});
  RunFigure(harness, RelationId::kPersonCharge, "Figure 3");
  RunFigure(harness, RelationId::kDiseaseOutbreak, "Figure 4");
  RunFigure(harness, RelationId::kPersonCareer, "Figure 5");
  return 0;
}
