// Ablation — elastic-net mixing (λL2): validates the paper's in-training
// feature-selection claim that λL2 = 0.99 yields models with ~10x fewer
// features than pure ℓ2 at comparable ranking quality, while heavier ℓ1
// weights degrade quality (paper Section 4, "Ranking Generation
// Techniques").
#include <cstdio>

#include "harness.h"

using namespace ie;
using namespace ie::bench;

int main() {
  Harness harness({RelationId::kPersonCharge});
  const RelationId relation = RelationId::kPersonCharge;
  const size_t seeds = NumSeeds();
  const size_t sample = harness.SampleSize();

  std::printf(
      "\nAblation: elastic-net mixing for RSVM-IE (Person-Charge, "
      "adaptive SRS+Mod-C)\n");
  std::printf("%-12s %10s %10s %14s\n", "lambda_L2", "AP%", "AUC%",
              "model features");

  for (const double l2_share : {1.0, 0.99, 0.9, 0.5, 0.1}) {
    double features = 0.0;
    const AggregateMetrics agg = RunExperiment(
        "cfg", seeds, [&](size_t run) {
          PipelineConfig config = PipelineConfig::Defaults(
              RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC,
              RunSeed(2000, run));
          config.sample_size = sample;
          config.rsvm.rank_svm.sgd.lambda_l2_share = l2_share;
          PipelineResult result = AdaptiveExtractionPipeline::Run(
              harness.Context(relation), config);
          features += static_cast<double>(result.final_model_features) /
                      static_cast<double>(seeds);
          return result;
        });
    std::printf("%-12.2f %10.1f %10.1f %14.0f\n", l2_share,
                100.0 * agg.ap_mean, 100.0 * agg.auc_mean, features);
  }
  return 0;
}
