// Microbenchmark for the incremental delta re-rank engine (DESIGN.md §8)
// and the SoA hot-path kernels behind it (DESIGN.md §14).
//
// Two modes:
//
//  1. google-benchmark (default): the cost of re-ranking a large pending
//     pool after a post-warmup model update, with the factored-delta pass
//     vs. an always-full rescore. The interesting regime is the steady
//     state of the adaptive loop — a warmed model absorbing a small batch
//     of observations between snapshots — where the correction support is
//     sparse and the delta pass beats the full O(pool × features) pass by
//     ≥2x (batch 1–2; the advantage shrinks as the absorbed batch grows,
//     until the density fallback takes over).
//
//  2. perf trajectory (--out=BENCH_rerank.json): hand-timed single-thread
//     comparisons of the production hot paths against faithful in-bench
//     copies of the pre-SoA implementations (AoS pair layout, per-entry
//     bounds checks, branchy sign mass, unordered_map count/bigram
//     tables). Emits JSON for CI trend tracking (tools/bench_trend.py)
//     with two acceptance gates:
//       rerank-update speedup  >= 1.5x  (incremental vs full rescore
//                                        per model update, batch 2)
//       featurize speedup      >= 1.5x  (arena + flat-hash featurizer vs
//                                        unordered_map reference)
//     The kernel row (fused SoA gather vs AoS reference over identically
//     laid-out fresh copies) is informational — the gather is
//     memory-bound, so its margin is modest — but its bitwise-identity
//     check is mandatory: the optimizations must not change a single
//     float bit.
//
// Environment knobs (on top of bench_common.h's):
//   IE_BENCH_POOL   pending-pool size for the engine (default 10000,
//                   clamped to the corpus test split)
//
//   bench_rerank [--out=BENCH_rerank.json] [--reps=7]
//                [--metrics-out=metrics.prom] [google-benchmark flags]
//
// With --metrics-out, the process-wide metrics registry (counters and
// latency histograms tallied by the engine hot paths during the run) is
// rendered as Prometheus text exposition to the given path on exit
// (validated by tools/report.py --validate-prom).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <unordered_map>

#include "common/metrics.h"
#include "harness.h"
#include "pipeline/rerank_engine.h"
#include "ranking/learned_rankers.h"
#include "text/sparse_kernels.h"

using namespace ie;
using namespace ie::bench;

namespace {

Harness* g_harness = nullptr;
std::vector<DocId> g_pool;
std::vector<LabeledExample> g_stream;

void BuildPoolAndStream() {
  const auto& test_pool = g_harness->test_pool();
  const size_t pool_size =
      std::min(EnvSize("IE_BENCH_POOL", 10000), test_pool.size());
  g_pool.assign(test_pool.begin(), test_pool.begin() + pool_size);
  const auto& outcomes = g_harness->world().outcome(RelationId::kPersonCharge);
  SharedContext ctx = g_harness->Context(RelationId::kPersonCharge);
  for (DocId id : g_pool) {
    g_stream.push_back(
        {(*ctx.word_features)[id], outcomes.useful(id) ? 1 : -1});
  }
}

template <typename Ranker>
std::unique_ptr<Ranker> WarmedRanker() {
  auto ranker = std::make_unique<Ranker>();
  std::vector<LabeledExample> sample(
      g_stream.begin(),
      g_stream.begin() + std::min<size_t>(400, g_stream.size()));
  ranker->TrainInitial(sample);
  return ranker;
}

// One timed iteration = one model update: absorb `batch` observations
// (untimed), then Rerank() the full pending pool. The engine is warmed with
// an initial full pass so cached margins are valid, exactly like the
// pipeline's post-warmup state.
template <typename Ranker>
void RunUpdateBench(benchmark::State& state, bool incremental) {
  SharedContext ctx = g_harness->Context(RelationId::kPersonCharge);
  auto ranker = WarmedRanker<Ranker>();
  RerankOptions options;
  options.incremental = incremental;
  RerankEngine engine(ranker.get(), ctx.word_features, options);
  for (DocId doc : g_pool) engine.AddCandidate(doc);
  engine.Rerank();  // initial full pass: caches margins + sign masses

  const size_t batch = static_cast<size_t>(state.range(0));
  size_t i = 400;
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t b = 0; b < batch; ++b) {
      const auto& ex = g_stream[i++ % g_stream.size()];
      ranker->Observe(ex.features, ex.label > 0);
    }
    state.ResumeTiming();
    engine.Rerank();
  }
  state.counters["pool"] = static_cast<double>(g_pool.size());
  state.counters["delta_passes"] =
      static_cast<double>(engine.stats().delta_rescores);
  state.counters["full_passes"] =
      static_cast<double>(engine.stats().full_rescores);
  state.counters["fallbacks"] =
      static_cast<double>(engine.stats().density_fallbacks);
  if (engine.stats().delta_rescores > 0) {
    state.counters["touches_per_pass"] =
        static_cast<double>(engine.stats().delta_posting_touches) /
        static_cast<double>(engine.stats().delta_rescores);
  }
}

void BM_RsvmUpdateFull(benchmark::State& state) {
  RunUpdateBench<RsvmIeRanker>(state, /*incremental=*/false);
}
BENCHMARK(BM_RsvmUpdateFull)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_RsvmUpdateIncremental(benchmark::State& state) {
  RunUpdateBench<RsvmIeRanker>(state, /*incremental=*/true);
}
BENCHMARK(BM_RsvmUpdateIncremental)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_BaggUpdateFull(benchmark::State& state) {
  RunUpdateBench<BaggIeRanker>(state, /*incremental=*/false);
}
BENCHMARK(BM_BaggUpdateFull)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_BaggUpdateIncremental(benchmark::State& state) {
  RunUpdateBench<BaggIeRanker>(state, /*incremental=*/true);
}
BENCHMARK(BM_BaggUpdateIncremental)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------------------
// Perf trajectory (--out): production hot paths vs faithful pre-SoA
// reference implementations, single-threaded, best-of-reps wall time.
// ---------------------------------------------------------------------------

uint64_t Bits(double x) {
  uint64_t u;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

using AosVector = std::vector<std::pair<uint32_t, float>>;

// The pre-SoA WeightVector::DotAndSignMass: iterate (id, value) pairs with
// a per-entry bounds check, branchy sign accumulation.
inline double RefDotAndSignMass(const std::vector<double>& w,
                                const AosVector& x, double* sign_mass) {
  double dot = 0.0;
  double z = 0.0;
  for (const auto& [id, value] : x) {
    if (id >= w.size()) continue;
    const double weight = w[id];
    const double v = static_cast<double>(value);
    dot += weight * v;
    if (weight > 0.0) {
      z += v;
    } else if (weight < 0.0) {
      z -= v;
    }
  }
  *sign_mass = z;
  return dot;
}

// The pre-SoA Featurizer hot loop: unordered_map count accumulation,
// unordered_map bigram-id lookups (default identity hash on uint64_t — the
// clustering bug the flat hash's splitmix64 mixer fixes), heap-vector entry
// staging, FromUnsorted.
SparseVector RefFeaturize(
    const Document& doc,
    const std::unordered_map<uint64_t, uint32_t>& bigram_map, bool log_tf) {
  std::unordered_map<uint32_t, float> counts;
  for (const Sentence& sentence : doc.sentences) {
    for (size_t i = 0; i < sentence.tokens.size(); ++i) {
      counts[sentence.tokens[i]] += 1.0f;
      if (i + 1 < sentence.tokens.size()) {
        const uint64_t key =
            (static_cast<uint64_t>(sentence.tokens[i]) << 32) |
            static_cast<uint64_t>(sentence.tokens[i + 1]);
        counts[bigram_map.at(key)] += 1.0f;
      }
    }
  }
  std::vector<SparseVector::Entry> entries;
  entries.reserve(counts.size());
  // DETERMINISM: order-insensitive (FromUnsorted sorts entries by id).
  for (const auto& [id, tf] : counts) {
    entries.push_back({id, log_tf ? 1.0f + std::log(tf) : tf});
  }
  SparseVector v = SparseVector::FromUnsorted(std::move(entries));
  v.Normalize();
  return v;
}

struct TrajectoryResult {
  // Kernel comparison (per full pass over the pool).
  double kernel_reference_us = 0.0;
  double kernel_soa_us = 0.0;
  double kernel_speedup = 0.0;
  bool kernel_identical = false;
  // Featurize comparison (per document).
  size_t featurize_docs = 0;
  double featurize_reference_us = 0.0;
  double featurize_soa_us = 0.0;
  double featurize_speedup = 0.0;
  bool featurize_identical = false;
  // Engine-level per-update timings (batch 2): full rescore vs the
  // incremental delta pass. The ratio is the gated rerank-update speedup.
  double update_full_us = 0.0;
  double update_incremental_us = 0.0;
  double update_speedup = 0.0;
};

template <typename Fn>
double BestOfRepsSeconds(int reps, Fn&& fn) {
  double best = 0.0;
  for (int r = 0; r < reps; ++r) {
    WallTimer timer;
    fn();
    const double wall = timer.ElapsedSeconds();
    if (best == 0.0 || wall < best) best = wall;
  }
  return best;
}

void RunKernelTrajectory(int reps, TrajectoryResult* out) {
  SharedContext ctx = g_harness->Context(RelationId::kPersonCharge);
  auto ranker = WarmedRanker<RsvmIeRanker>();
  const WeightVector weights = ranker->ModelWeights();
  const std::vector<double>& w = weights.raw();

  // Both sides run over fresh copies allocated back-to-back in pool order,
  // so the comparison isolates layout + kernel code rather than allocation
  // age (the long-lived pool vectors are scattered across the heap; fresh
  // AoS copies racing them would mostly measure that scatter).
  std::vector<AosVector> aos;
  aos.reserve(g_pool.size());
  for (DocId id : g_pool) {
    const SparseVector& f = (*ctx.word_features)[id];
    AosVector v;
    v.reserve(f.size());
    for (const auto& [fid, value] : f) v.emplace_back(fid, value);
    aos.push_back(std::move(v));
  }
  std::vector<SparseVector> soa;
  soa.reserve(g_pool.size());
  for (DocId id : g_pool) soa.push_back((*ctx.word_features)[id]);

  double ref_dot_total = 0.0;
  double ref_sm_total = 0.0;
  const double ref_seconds = BestOfRepsSeconds(reps, [&] {
    double dot_total = 0.0;
    double sm_total = 0.0;
    for (const AosVector& x : aos) {
      double sm = 0.0;
      dot_total += RefDotAndSignMass(w, x, &sm);
      sm_total += sm;
    }
    benchmark::DoNotOptimize(dot_total);
    benchmark::DoNotOptimize(sm_total);
    ref_dot_total = dot_total;
    ref_sm_total = sm_total;
  });

  double soa_dot_total = 0.0;
  double soa_sm_total = 0.0;
  const double soa_seconds = BestOfRepsSeconds(reps, [&] {
    double dot_total = 0.0;
    double sm_total = 0.0;
    for (const SparseVector& x : soa) {
      double dot = 0.0;
      double sm = 0.0;
      kernels::GatherDotAndSignMass(w.data(), w.size(), x.ids(), x.values(),
                                    x.size(), &dot, &sm);
      dot_total += dot;
      sm_total += sm;
    }
    benchmark::DoNotOptimize(dot_total);
    benchmark::DoNotOptimize(sm_total);
    soa_dot_total = dot_total;
    soa_sm_total = sm_total;
  });

  out->kernel_identical = Bits(ref_dot_total) == Bits(soa_dot_total) &&
                          Bits(ref_sm_total) == Bits(soa_sm_total);
  out->kernel_reference_us = ref_seconds * 1e6;
  out->kernel_soa_us = soa_seconds * 1e6;
  out->kernel_speedup =
      soa_seconds > 0.0 ? ref_seconds / soa_seconds : 0.0;
  std::fprintf(stderr,
               "[bench_rerank] kernel pass over %zu docs: reference=%.0fus "
               "soa=%.0fus speedup=%.2fx identical=%s\n",
               g_pool.size(), out->kernel_reference_us, out->kernel_soa_us,
               out->kernel_speedup, out->kernel_identical ? "yes" : "NO");
}

void RunFeaturizeTrajectory(int reps, TrajectoryResult* out) {
  Corpus& corpus = g_harness->world().corpus;
  const size_t num_docs = std::min<size_t>(2000, g_pool.size());

  // A bigram featurizer so the trajectory covers the flat-hash bigram
  // cache, not just the count table. Warm serially (interns every bigram),
  // then snapshot the id map for the reference path — both timed loops do
  // pure lookups, the steady state after FeaturizePool's warm pass.
  FeaturizerOptions options;
  options.use_bigrams = true;
  Featurizer featurizer(&corpus.vocab(), options);
  std::unordered_map<uint64_t, uint32_t> bigram_map;
  for (size_t i = 0; i < num_docs; ++i) {
    const Document& doc = corpus.doc(g_pool[i]);
    featurizer.WarmBigrams(doc);
    for (const Sentence& sentence : doc.sentences) {
      for (size_t t = 0; t + 1 < sentence.tokens.size(); ++t) {
        const uint64_t key =
            (static_cast<uint64_t>(sentence.tokens[t]) << 32) |
            static_cast<uint64_t>(sentence.tokens[t + 1]);
        bigram_map.emplace(
            key,
            featurizer.BigramFeatureId(sentence.tokens[t],
                                       sentence.tokens[t + 1]));
      }
    }
  }

  // Bitwise-equivalence check (untimed): the arena path must reproduce the
  // unordered_map path feature for feature, bit for bit.
  bool identical = true;
  for (size_t i = 0; i < num_docs && identical; ++i) {
    const Document& doc = corpus.doc(g_pool[i]);
    const SparseVector a = featurizer.Featurize(doc);
    const SparseVector b =
        RefFeaturize(doc, bigram_map, featurizer.options().log_tf);
    if (a.size() != b.size()) {
      identical = false;
      break;
    }
    for (size_t j = 0; j < a.size(); ++j) {
      uint32_t bits_a = 0;
      uint32_t bits_b = 0;
      const float va = a.value(j);
      const float vb = b.value(j);
      std::memcpy(&bits_a, &va, sizeof(bits_a));
      std::memcpy(&bits_b, &vb, sizeof(bits_b));
      if (a.id(j) != b.id(j) || bits_a != bits_b) {
        identical = false;
        break;
      }
    }
  }

  const double ref_seconds = BestOfRepsSeconds(reps, [&] {
    size_t total = 0;
    for (size_t i = 0; i < num_docs; ++i) {
      total += RefFeaturize(corpus.doc(g_pool[i]), bigram_map,
                            featurizer.options().log_tf)
                   .size();
    }
    benchmark::DoNotOptimize(total);
  });
  const double soa_seconds = BestOfRepsSeconds(reps, [&] {
    size_t total = 0;
    for (size_t i = 0; i < num_docs; ++i) {
      total += featurizer.Featurize(corpus.doc(g_pool[i])).size();
    }
    benchmark::DoNotOptimize(total);
  });

  out->featurize_docs = num_docs;
  out->featurize_identical = identical;
  out->featurize_reference_us = ref_seconds * 1e6 / num_docs;
  out->featurize_soa_us = soa_seconds * 1e6 / num_docs;
  out->featurize_speedup =
      soa_seconds > 0.0 ? ref_seconds / soa_seconds : 0.0;
  std::fprintf(stderr,
               "[bench_rerank] featurize over %zu docs: reference=%.2fus/doc "
               "arena=%.2fus/doc speedup=%.2fx identical=%s\n",
               num_docs, out->featurize_reference_us, out->featurize_soa_us,
               out->featurize_speedup,
               out->featurize_identical ? "yes" : "NO");
}

void RunUpdateTrajectory(int reps, TrajectoryResult* out) {
  // The gated "rerank-update" path: engine-level per-update wall time at
  // batch 2, incremental delta pass vs always-full rescore. Both modes run
  // on the same pool, so the ratio is scale-invariant even though the
  // absolute times grow with IE_BENCH_POOL. Best of `reps` updates per
  // mode.
  SharedContext ctx = g_harness->Context(RelationId::kPersonCharge);
  for (bool incremental : {false, true}) {
    auto ranker = WarmedRanker<RsvmIeRanker>();
    RerankOptions options;
    options.incremental = incremental;
    RerankEngine engine(ranker.get(), ctx.word_features, options);
    for (DocId doc : g_pool) engine.AddCandidate(doc);
    engine.Rerank();
    size_t i = 400;
    const double seconds = BestOfRepsSeconds(reps, [&] {
      for (size_t b = 0; b < 2; ++b) {
        const auto& ex = g_stream[i++ % g_stream.size()];
        ranker->Observe(ex.features, ex.label > 0);
      }
      engine.Rerank();
    });
    (incremental ? out->update_incremental_us : out->update_full_us) =
        seconds * 1e6;
  }
  out->update_speedup = out->update_incremental_us > 0.0
                            ? out->update_full_us / out->update_incremental_us
                            : 0.0;
  std::fprintf(stderr,
               "[bench_rerank] update(batch=2) over %zu docs: full=%.0fus "
               "incremental=%.0fus speedup=%.2fx\n",
               g_pool.size(), out->update_full_us, out->update_incremental_us,
               out->update_speedup);
}

constexpr double kSpeedupGate = 1.5;

int RunTrajectory(const std::string& out_path, int reps) {
  TrajectoryResult result;
  RunKernelTrajectory(reps, &result);
  RunFeaturizeTrajectory(reps, &result);
  RunUpdateTrajectory(reps, &result);

  const bool identical = result.kernel_identical && result.featurize_identical;
  const bool gate_passes = identical &&
                           result.update_speedup >= kSpeedupGate &&
                           result.featurize_speedup >= kSpeedupGate;
  std::fprintf(stderr,
               "[bench_rerank] gates (>=%.1fx, bit-identical): "
               "rerank-update=%.2fx featurize=%.2fx (kernel=%.2fx info) "
               "-> %s\n",
               kSpeedupGate, result.update_speedup, result.featurize_speedup,
               result.kernel_speedup, gate_passes ? "PASS" : "FAIL");

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  std::fprintf(out,
               "{\n  \"bench\": \"rerank\",\n  \"docs\": %zu,\n"
               "  \"pool\": %zu,\n  \"byte_identical\": %s,\n",
               NumDocs(), g_pool.size(), identical ? "true" : "false");
  std::fprintf(out,
               "  \"kernel\": {\"reference_us_per_pass\": %.1f, "
               "\"soa_us_per_pass\": %.1f, \"speedup\": %.3f},\n",
               result.kernel_reference_us, result.kernel_soa_us,
               result.kernel_speedup);
  std::fprintf(out,
               "  \"featurize\": {\"docs\": %zu, "
               "\"reference_us_per_doc\": %.3f, \"arena_us_per_doc\": %.3f, "
               "\"speedup\": %.3f},\n",
               result.featurize_docs, result.featurize_reference_us,
               result.featurize_soa_us, result.featurize_speedup);
  std::fprintf(out,
               "  \"update_batch2\": {\"full_us\": %.1f, "
               "\"incremental_us\": %.1f, \"speedup\": %.3f},\n",
               result.update_full_us, result.update_incremental_us,
               result.update_speedup);
  std::fprintf(out, "  \"gate_threshold\": %.2f,\n  \"gate\": \"%s\"\n}\n",
               kSpeedupGate, gate_passes ? "PASS" : "FAIL");
  std::fclose(out);
  return gate_passes ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string metrics_out_path;
  int reps = 7;
  // Strip trajectory flags before google-benchmark sees argv.
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--out=", 0) == 0) {
      out_path = arg.substr(6);
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::max(1, std::atoi(arg.substr(7).c_str()));
    } else if (arg.rfind("--metrics-out=", 0) == 0) {
      metrics_out_path = arg.substr(14);
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;

  Harness harness({RelationId::kPersonCharge}, NumDocs());
  g_harness = &harness;
  BuildPoolAndStream();
  int status = 0;
  if (!out_path.empty()) {
    status = RunTrajectory(out_path, reps);
  } else {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  // Prometheus exposition of everything the run tallied into the global
  // registry (engine counters, kernel latency histograms with
  // p50/p90/p99).
  if (!metrics_out_path.empty()) {
    std::FILE* prom = std::fopen(metrics_out_path.c_str(), "w");
    if (prom == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", metrics_out_path.c_str());
      return 2;
    }
    const std::string text = MetricsRegistry::Global().RenderPrometheus();
    std::fwrite(text.data(), 1, text.size(), prom);
    std::fclose(prom);
    std::fprintf(stderr, "[bench_rerank] metrics exposition -> %s\n",
                 metrics_out_path.c_str());
  }
  return status;
}
