// Microbenchmark for the incremental delta re-rank engine (DESIGN.md §8):
// the cost of re-ranking a large pending pool after a post-warmup model
// update, with the factored-delta pass vs. an always-full rescore. The
// interesting regime is the steady state of the adaptive loop — a warmed
// model absorbing a small batch of observations between snapshots — where
// the correction support is sparse and the delta pass beats the full
// O(pool × features) pass by ≥2x (batch 1–2; the advantage shrinks as the
// absorbed batch grows, until the density fallback takes over).
//
// Environment knobs (on top of bench_common.h's):
//   IE_BENCH_POOL   pending-pool size for the engine (default 10000,
//                   clamped to the corpus test split)
#include <benchmark/benchmark.h>

#include "harness.h"
#include "pipeline/rerank_engine.h"
#include "ranking/learned_rankers.h"

using namespace ie;
using namespace ie::bench;

namespace {

Harness* g_harness = nullptr;
std::vector<DocId> g_pool;
std::vector<LabeledExample> g_stream;

void BuildPoolAndStream() {
  const auto& test_pool = g_harness->test_pool();
  const size_t pool_size =
      std::min(EnvSize("IE_BENCH_POOL", 10000), test_pool.size());
  g_pool.assign(test_pool.begin(), test_pool.begin() + pool_size);
  const auto& outcomes = g_harness->world().outcome(RelationId::kPersonCharge);
  PipelineContext ctx = g_harness->Context(RelationId::kPersonCharge);
  for (DocId id : g_pool) {
    g_stream.push_back(
        {(*ctx.word_features)[id], outcomes.useful(id) ? 1 : -1});
  }
}

template <typename Ranker>
std::unique_ptr<Ranker> WarmedRanker() {
  auto ranker = std::make_unique<Ranker>();
  std::vector<LabeledExample> sample(
      g_stream.begin(),
      g_stream.begin() + std::min<size_t>(400, g_stream.size()));
  ranker->TrainInitial(sample);
  return ranker;
}

// One timed iteration = one model update: absorb `batch` observations
// (untimed), then Rerank() the full pending pool. The engine is warmed with
// an initial full pass so cached margins are valid, exactly like the
// pipeline's post-warmup state.
template <typename Ranker>
void RunUpdateBench(benchmark::State& state, bool incremental) {
  PipelineContext ctx = g_harness->Context(RelationId::kPersonCharge);
  auto ranker = WarmedRanker<Ranker>();
  RerankOptions options;
  options.incremental = incremental;
  RerankEngine engine(ranker.get(), ctx.word_features, options);
  for (DocId doc : g_pool) engine.AddCandidate(doc);
  engine.Rerank();  // initial full pass: caches margins + sign masses

  const size_t batch = static_cast<size_t>(state.range(0));
  size_t i = 400;
  for (auto _ : state) {
    state.PauseTiming();
    for (size_t b = 0; b < batch; ++b) {
      const auto& ex = g_stream[i++ % g_stream.size()];
      ranker->Observe(ex.features, ex.label > 0);
    }
    state.ResumeTiming();
    engine.Rerank();
  }
  state.counters["pool"] = static_cast<double>(g_pool.size());
  state.counters["delta_passes"] =
      static_cast<double>(engine.stats().delta_rescores);
  state.counters["full_passes"] =
      static_cast<double>(engine.stats().full_rescores);
  state.counters["fallbacks"] =
      static_cast<double>(engine.stats().density_fallbacks);
  if (engine.stats().delta_rescores > 0) {
    state.counters["touches_per_pass"] =
        static_cast<double>(engine.stats().delta_posting_touches) /
        static_cast<double>(engine.stats().delta_rescores);
  }
}

void BM_RsvmUpdateFull(benchmark::State& state) {
  RunUpdateBench<RsvmIeRanker>(state, /*incremental=*/false);
}
BENCHMARK(BM_RsvmUpdateFull)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_RsvmUpdateIncremental(benchmark::State& state) {
  RunUpdateBench<RsvmIeRanker>(state, /*incremental=*/true);
}
BENCHMARK(BM_RsvmUpdateIncremental)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

void BM_BaggUpdateFull(benchmark::State& state) {
  RunUpdateBench<BaggIeRanker>(state, /*incremental=*/false);
}
BENCHMARK(BM_BaggUpdateFull)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(32)->Unit(benchmark::kMicrosecond);

void BM_BaggUpdateIncremental(benchmark::State& state) {
  RunUpdateBench<BaggIeRanker>(state, /*incremental=*/true);
}
BENCHMARK(BM_BaggUpdateIncremental)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(32)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  Harness harness({RelationId::kPersonCharge}, NumDocs());
  g_harness = &harness;
  BuildPoolAndStream();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
