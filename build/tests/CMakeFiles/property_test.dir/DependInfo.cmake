
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/property_test.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/property_test.dir/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/ie_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/pipeline/CMakeFiles/ie_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/ie_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/extract/CMakeFiles/ie_extract.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/ie_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/update/CMakeFiles/ie_update.dir/DependInfo.cmake"
  "/root/repo/build/src/ranking/CMakeFiles/ie_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/ie_index.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/ie_learn.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ie_text.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ie_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
