# Empty dependencies file for recall_estimator_test.
# This may be replaced when dependencies are built.
