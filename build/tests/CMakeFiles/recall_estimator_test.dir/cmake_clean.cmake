file(REMOVE_RECURSE
  "CMakeFiles/recall_estimator_test.dir/recall_estimator_test.cc.o"
  "CMakeFiles/recall_estimator_test.dir/recall_estimator_test.cc.o.d"
  "recall_estimator_test"
  "recall_estimator_test.pdb"
  "recall_estimator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recall_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
