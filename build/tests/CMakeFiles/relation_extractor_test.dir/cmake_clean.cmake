file(REMOVE_RECURSE
  "CMakeFiles/relation_extractor_test.dir/relation_extractor_test.cc.o"
  "CMakeFiles/relation_extractor_test.dir/relation_extractor_test.cc.o.d"
  "relation_extractor_test"
  "relation_extractor_test.pdb"
  "relation_extractor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relation_extractor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
