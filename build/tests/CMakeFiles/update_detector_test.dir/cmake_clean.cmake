file(REMOVE_RECURSE
  "CMakeFiles/update_detector_test.dir/update_detector_test.cc.o"
  "CMakeFiles/update_detector_test.dir/update_detector_test.cc.o.d"
  "update_detector_test"
  "update_detector_test.pdb"
  "update_detector_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/update_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
