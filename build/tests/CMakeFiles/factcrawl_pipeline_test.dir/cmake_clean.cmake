file(REMOVE_RECURSE
  "CMakeFiles/factcrawl_pipeline_test.dir/factcrawl_pipeline_test.cc.o"
  "CMakeFiles/factcrawl_pipeline_test.dir/factcrawl_pipeline_test.cc.o.d"
  "factcrawl_pipeline_test"
  "factcrawl_pipeline_test.pdb"
  "factcrawl_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/factcrawl_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
