# Empty dependencies file for factcrawl_pipeline_test.
# This may be replaced when dependencies are built.
