file(REMOVE_RECURSE
  "CMakeFiles/qxtract_parallel_test.dir/qxtract_parallel_test.cc.o"
  "CMakeFiles/qxtract_parallel_test.dir/qxtract_parallel_test.cc.o.d"
  "qxtract_parallel_test"
  "qxtract_parallel_test.pdb"
  "qxtract_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qxtract_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
