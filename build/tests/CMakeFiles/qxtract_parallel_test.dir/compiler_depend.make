# Empty compiler generated dependencies file for qxtract_parallel_test.
# This may be replaced when dependencies are built.
