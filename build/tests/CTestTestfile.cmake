# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/rng_test[1]_include.cmake")
include("/root/repo/build/tests/common_misc_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_vector_test[1]_include.cmake")
include("/root/repo/build/tests/text_test[1]_include.cmake")
include("/root/repo/build/tests/corpus_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/learn_test[1]_include.cmake")
include("/root/repo/build/tests/ner_test[1]_include.cmake")
include("/root/repo/build/tests/relation_extractor_test[1]_include.cmake")
include("/root/repo/build/tests/ranking_test[1]_include.cmake")
include("/root/repo/build/tests/sampling_test[1]_include.cmake")
include("/root/repo/build/tests/update_detector_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/factcrawl_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/recall_estimator_test[1]_include.cmake")
include("/root/repo/build/tests/tuple_store_test[1]_include.cmake")
include("/root/repo/build/tests/qxtract_parallel_test[1]_include.cmake")
