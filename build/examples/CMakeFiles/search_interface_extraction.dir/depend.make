# Empty dependencies file for search_interface_extraction.
# This may be replaced when dependencies are built.
