file(REMOVE_RECURSE
  "CMakeFiles/search_interface_extraction.dir/search_interface_extraction.cpp.o"
  "CMakeFiles/search_interface_extraction.dir/search_interface_extraction.cpp.o.d"
  "search_interface_extraction"
  "search_interface_extraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/search_interface_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
