file(REMOVE_RECURSE
  "CMakeFiles/custom_extractor.dir/custom_extractor.cpp.o"
  "CMakeFiles/custom_extractor.dir/custom_extractor.cpp.o.d"
  "custom_extractor"
  "custom_extractor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_extractor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
