# Empty dependencies file for custom_extractor.
# This may be replaced when dependencies are built.
