# Empty dependencies file for disaster_monitoring.
# This may be replaced when dependencies are built.
