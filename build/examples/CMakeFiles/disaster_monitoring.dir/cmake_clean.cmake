file(REMOVE_RECURSE
  "CMakeFiles/disaster_monitoring.dir/disaster_monitoring.cpp.o"
  "CMakeFiles/disaster_monitoring.dir/disaster_monitoring.cpp.o.d"
  "disaster_monitoring"
  "disaster_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disaster_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
