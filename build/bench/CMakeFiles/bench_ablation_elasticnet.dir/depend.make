# Empty dependencies file for bench_ablation_elasticnet.
# This may be replaced when dependencies are built.
