file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_elasticnet.dir/bench_ablation_elasticnet.cc.o"
  "CMakeFiles/bench_ablation_elasticnet.dir/bench_ablation_elasticnet.cc.o.d"
  "bench_ablation_elasticnet"
  "bench_ablation_elasticnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_elasticnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
