# Empty dependencies file for bench_ablation_search_access.
# This may be replaced when dependencies are built.
