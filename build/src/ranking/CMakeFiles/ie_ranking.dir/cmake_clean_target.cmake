file(REMOVE_RECURSE
  "libie_ranking.a"
)
