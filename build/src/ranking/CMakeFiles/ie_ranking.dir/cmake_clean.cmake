file(REMOVE_RECURSE
  "CMakeFiles/ie_ranking.dir/factcrawl.cc.o"
  "CMakeFiles/ie_ranking.dir/factcrawl.cc.o.d"
  "CMakeFiles/ie_ranking.dir/learned_rankers.cc.o"
  "CMakeFiles/ie_ranking.dir/learned_rankers.cc.o.d"
  "CMakeFiles/ie_ranking.dir/query_learning.cc.o"
  "CMakeFiles/ie_ranking.dir/query_learning.cc.o.d"
  "libie_ranking.a"
  "libie_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
