# Empty compiler generated dependencies file for ie_ranking.
# This may be replaced when dependencies are built.
