file(REMOVE_RECURSE
  "CMakeFiles/ie_eval.dir/diversity.cc.o"
  "CMakeFiles/ie_eval.dir/diversity.cc.o.d"
  "CMakeFiles/ie_eval.dir/experiment.cc.o"
  "CMakeFiles/ie_eval.dir/experiment.cc.o.d"
  "CMakeFiles/ie_eval.dir/metrics.cc.o"
  "CMakeFiles/ie_eval.dir/metrics.cc.o.d"
  "CMakeFiles/ie_eval.dir/recall_estimator.cc.o"
  "CMakeFiles/ie_eval.dir/recall_estimator.cc.o.d"
  "libie_eval.a"
  "libie_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
