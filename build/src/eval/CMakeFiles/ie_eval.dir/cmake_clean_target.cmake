file(REMOVE_RECURSE
  "libie_eval.a"
)
