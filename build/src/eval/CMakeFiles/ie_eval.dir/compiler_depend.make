# Empty compiler generated dependencies file for ie_eval.
# This may be replaced when dependencies are built.
