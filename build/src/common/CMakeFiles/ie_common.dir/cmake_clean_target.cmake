file(REMOVE_RECURSE
  "libie_common.a"
)
