file(REMOVE_RECURSE
  "CMakeFiles/ie_common.dir/logging.cc.o"
  "CMakeFiles/ie_common.dir/logging.cc.o.d"
  "CMakeFiles/ie_common.dir/rng.cc.o"
  "CMakeFiles/ie_common.dir/rng.cc.o.d"
  "CMakeFiles/ie_common.dir/stats.cc.o"
  "CMakeFiles/ie_common.dir/stats.cc.o.d"
  "CMakeFiles/ie_common.dir/status.cc.o"
  "CMakeFiles/ie_common.dir/status.cc.o.d"
  "CMakeFiles/ie_common.dir/string_util.cc.o"
  "CMakeFiles/ie_common.dir/string_util.cc.o.d"
  "libie_common.a"
  "libie_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
