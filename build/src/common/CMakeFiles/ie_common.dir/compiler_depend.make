# Empty compiler generated dependencies file for ie_common.
# This may be replaced when dependencies are built.
