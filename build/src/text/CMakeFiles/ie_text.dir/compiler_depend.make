# Empty compiler generated dependencies file for ie_text.
# This may be replaced when dependencies are built.
