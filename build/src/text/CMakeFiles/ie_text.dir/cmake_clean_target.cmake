file(REMOVE_RECURSE
  "libie_text.a"
)
