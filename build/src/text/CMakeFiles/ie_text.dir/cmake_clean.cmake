file(REMOVE_RECURSE
  "CMakeFiles/ie_text.dir/featurizer.cc.o"
  "CMakeFiles/ie_text.dir/featurizer.cc.o.d"
  "CMakeFiles/ie_text.dir/sparse_vector.cc.o"
  "CMakeFiles/ie_text.dir/sparse_vector.cc.o.d"
  "CMakeFiles/ie_text.dir/tokenizer.cc.o"
  "CMakeFiles/ie_text.dir/tokenizer.cc.o.d"
  "CMakeFiles/ie_text.dir/vocabulary.cc.o"
  "CMakeFiles/ie_text.dir/vocabulary.cc.o.d"
  "libie_text.a"
  "libie_text.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_text.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
