# Empty compiler generated dependencies file for ie_learn.
# This may be replaced when dependencies are built.
