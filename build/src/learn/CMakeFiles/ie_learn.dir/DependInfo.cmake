
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learn/bagging.cc" "src/learn/CMakeFiles/ie_learn.dir/bagging.cc.o" "gcc" "src/learn/CMakeFiles/ie_learn.dir/bagging.cc.o.d"
  "/root/repo/src/learn/binary_svm.cc" "src/learn/CMakeFiles/ie_learn.dir/binary_svm.cc.o" "gcc" "src/learn/CMakeFiles/ie_learn.dir/binary_svm.cc.o.d"
  "/root/repo/src/learn/elastic_net_sgd.cc" "src/learn/CMakeFiles/ie_learn.dir/elastic_net_sgd.cc.o" "gcc" "src/learn/CMakeFiles/ie_learn.dir/elastic_net_sgd.cc.o.d"
  "/root/repo/src/learn/feature_selection.cc" "src/learn/CMakeFiles/ie_learn.dir/feature_selection.cc.o" "gcc" "src/learn/CMakeFiles/ie_learn.dir/feature_selection.cc.o.d"
  "/root/repo/src/learn/one_class_svm.cc" "src/learn/CMakeFiles/ie_learn.dir/one_class_svm.cc.o" "gcc" "src/learn/CMakeFiles/ie_learn.dir/one_class_svm.cc.o.d"
  "/root/repo/src/learn/rank_svm.cc" "src/learn/CMakeFiles/ie_learn.dir/rank_svm.cc.o" "gcc" "src/learn/CMakeFiles/ie_learn.dir/rank_svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ie_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ie_text.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
