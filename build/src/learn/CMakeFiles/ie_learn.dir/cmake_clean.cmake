file(REMOVE_RECURSE
  "CMakeFiles/ie_learn.dir/bagging.cc.o"
  "CMakeFiles/ie_learn.dir/bagging.cc.o.d"
  "CMakeFiles/ie_learn.dir/binary_svm.cc.o"
  "CMakeFiles/ie_learn.dir/binary_svm.cc.o.d"
  "CMakeFiles/ie_learn.dir/elastic_net_sgd.cc.o"
  "CMakeFiles/ie_learn.dir/elastic_net_sgd.cc.o.d"
  "CMakeFiles/ie_learn.dir/feature_selection.cc.o"
  "CMakeFiles/ie_learn.dir/feature_selection.cc.o.d"
  "CMakeFiles/ie_learn.dir/one_class_svm.cc.o"
  "CMakeFiles/ie_learn.dir/one_class_svm.cc.o.d"
  "CMakeFiles/ie_learn.dir/rank_svm.cc.o"
  "CMakeFiles/ie_learn.dir/rank_svm.cc.o.d"
  "libie_learn.a"
  "libie_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
