file(REMOVE_RECURSE
  "libie_learn.a"
)
