# Empty dependencies file for ie_corpus.
# This may be replaced when dependencies are built.
