file(REMOVE_RECURSE
  "libie_corpus.a"
)
