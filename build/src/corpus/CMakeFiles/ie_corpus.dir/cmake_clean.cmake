file(REMOVE_RECURSE
  "CMakeFiles/ie_corpus.dir/corpus.cc.o"
  "CMakeFiles/ie_corpus.dir/corpus.cc.o.d"
  "CMakeFiles/ie_corpus.dir/generator.cc.o"
  "CMakeFiles/ie_corpus.dir/generator.cc.o.d"
  "CMakeFiles/ie_corpus.dir/lexicon.cc.o"
  "CMakeFiles/ie_corpus.dir/lexicon.cc.o.d"
  "CMakeFiles/ie_corpus.dir/relation.cc.o"
  "CMakeFiles/ie_corpus.dir/relation.cc.o.d"
  "CMakeFiles/ie_corpus.dir/topic_model.cc.o"
  "CMakeFiles/ie_corpus.dir/topic_model.cc.o.d"
  "libie_corpus.a"
  "libie_corpus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
