# Empty dependencies file for ie_index.
# This may be replaced when dependencies are built.
