file(REMOVE_RECURSE
  "CMakeFiles/ie_index.dir/inverted_index.cc.o"
  "CMakeFiles/ie_index.dir/inverted_index.cc.o.d"
  "libie_index.a"
  "libie_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
