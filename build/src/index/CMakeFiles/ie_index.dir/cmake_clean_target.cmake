file(REMOVE_RECURSE
  "libie_index.a"
)
