# Empty compiler generated dependencies file for ie_sampling.
# This may be replaced when dependencies are built.
