file(REMOVE_RECURSE
  "CMakeFiles/ie_sampling.dir/cqs_learning.cc.o"
  "CMakeFiles/ie_sampling.dir/cqs_learning.cc.o.d"
  "CMakeFiles/ie_sampling.dir/sampler.cc.o"
  "CMakeFiles/ie_sampling.dir/sampler.cc.o.d"
  "libie_sampling.a"
  "libie_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
