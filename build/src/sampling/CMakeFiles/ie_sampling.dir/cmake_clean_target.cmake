file(REMOVE_RECURSE
  "libie_sampling.a"
)
