file(REMOVE_RECURSE
  "CMakeFiles/ie_update.dir/update_detector.cc.o"
  "CMakeFiles/ie_update.dir/update_detector.cc.o.d"
  "libie_update.a"
  "libie_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
