# Empty compiler generated dependencies file for ie_update.
# This may be replaced when dependencies are built.
