file(REMOVE_RECURSE
  "libie_update.a"
)
