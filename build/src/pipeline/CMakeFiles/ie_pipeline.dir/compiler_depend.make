# Empty compiler generated dependencies file for ie_pipeline.
# This may be replaced when dependencies are built.
