file(REMOVE_RECURSE
  "CMakeFiles/ie_pipeline.dir/factcrawl_pipeline.cc.o"
  "CMakeFiles/ie_pipeline.dir/factcrawl_pipeline.cc.o.d"
  "CMakeFiles/ie_pipeline.dir/pipeline.cc.o"
  "CMakeFiles/ie_pipeline.dir/pipeline.cc.o.d"
  "CMakeFiles/ie_pipeline.dir/qxtract_pipeline.cc.o"
  "CMakeFiles/ie_pipeline.dir/qxtract_pipeline.cc.o.d"
  "libie_pipeline.a"
  "libie_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
