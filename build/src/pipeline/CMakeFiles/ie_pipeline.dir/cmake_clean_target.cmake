file(REMOVE_RECURSE
  "libie_pipeline.a"
)
