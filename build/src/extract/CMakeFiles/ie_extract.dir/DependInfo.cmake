
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/extract/crf_ner.cc" "src/extract/CMakeFiles/ie_extract.dir/crf_ner.cc.o" "gcc" "src/extract/CMakeFiles/ie_extract.dir/crf_ner.cc.o.d"
  "/root/repo/src/extract/extraction_system.cc" "src/extract/CMakeFiles/ie_extract.dir/extraction_system.cc.o" "gcc" "src/extract/CMakeFiles/ie_extract.dir/extraction_system.cc.o.d"
  "/root/repo/src/extract/hmm_ner.cc" "src/extract/CMakeFiles/ie_extract.dir/hmm_ner.cc.o" "gcc" "src/extract/CMakeFiles/ie_extract.dir/hmm_ner.cc.o.d"
  "/root/repo/src/extract/memm_ner.cc" "src/extract/CMakeFiles/ie_extract.dir/memm_ner.cc.o" "gcc" "src/extract/CMakeFiles/ie_extract.dir/memm_ner.cc.o.d"
  "/root/repo/src/extract/ner.cc" "src/extract/CMakeFiles/ie_extract.dir/ner.cc.o" "gcc" "src/extract/CMakeFiles/ie_extract.dir/ner.cc.o.d"
  "/root/repo/src/extract/relation_extractor.cc" "src/extract/CMakeFiles/ie_extract.dir/relation_extractor.cc.o" "gcc" "src/extract/CMakeFiles/ie_extract.dir/relation_extractor.cc.o.d"
  "/root/repo/src/extract/sequence_tagger.cc" "src/extract/CMakeFiles/ie_extract.dir/sequence_tagger.cc.o" "gcc" "src/extract/CMakeFiles/ie_extract.dir/sequence_tagger.cc.o.d"
  "/root/repo/src/extract/tuple_store.cc" "src/extract/CMakeFiles/ie_extract.dir/tuple_store.cc.o" "gcc" "src/extract/CMakeFiles/ie_extract.dir/tuple_store.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ie_common.dir/DependInfo.cmake"
  "/root/repo/build/src/text/CMakeFiles/ie_text.dir/DependInfo.cmake"
  "/root/repo/build/src/corpus/CMakeFiles/ie_corpus.dir/DependInfo.cmake"
  "/root/repo/build/src/learn/CMakeFiles/ie_learn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
