# Empty dependencies file for ie_extract.
# This may be replaced when dependencies are built.
