file(REMOVE_RECURSE
  "libie_extract.a"
)
