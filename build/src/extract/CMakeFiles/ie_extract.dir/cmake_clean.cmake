file(REMOVE_RECURSE
  "CMakeFiles/ie_extract.dir/crf_ner.cc.o"
  "CMakeFiles/ie_extract.dir/crf_ner.cc.o.d"
  "CMakeFiles/ie_extract.dir/extraction_system.cc.o"
  "CMakeFiles/ie_extract.dir/extraction_system.cc.o.d"
  "CMakeFiles/ie_extract.dir/hmm_ner.cc.o"
  "CMakeFiles/ie_extract.dir/hmm_ner.cc.o.d"
  "CMakeFiles/ie_extract.dir/memm_ner.cc.o"
  "CMakeFiles/ie_extract.dir/memm_ner.cc.o.d"
  "CMakeFiles/ie_extract.dir/ner.cc.o"
  "CMakeFiles/ie_extract.dir/ner.cc.o.d"
  "CMakeFiles/ie_extract.dir/relation_extractor.cc.o"
  "CMakeFiles/ie_extract.dir/relation_extractor.cc.o.d"
  "CMakeFiles/ie_extract.dir/sequence_tagger.cc.o"
  "CMakeFiles/ie_extract.dir/sequence_tagger.cc.o.d"
  "CMakeFiles/ie_extract.dir/tuple_store.cc.o"
  "CMakeFiles/ie_extract.dir/tuple_store.cc.o.d"
  "libie_extract.a"
  "libie_extract.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ie_extract.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
