// Bring your own extractor and your own text.
//
// The ranking pipeline treats the extraction system as a black box, so any
// EntityRecognizer + RelationExtractor combination works. This example
// builds a custom Disease-Outbreak extractor from the library's rule-based
// parts (gazetteer + temporal regex + entity distance), runs it over raw
// text ingested with the tokenizer, and prints the extracted tuples —
// no synthetic corpus generator involved.
//
// Build & run:  ./build/examples/custom_extractor
#include <cstdio>
#include <memory>

#include "extract/extraction_system.h"
#include "extract/ner.h"
#include "extract/relation_extractor.h"
#include "text/tokenizer.h"

using namespace ie;

int main() {
  auto vocab = std::make_shared<Vocabulary>();

  // 1) Ingest raw text documents.
  const char* articles[] = {
      "A cholera outbreak began in march 1994 near the harbor district. "
      "Health officials opened emergency clinics. Hundreds were treated.",
      "Researchers published a new study of malaria treatments. "
      "The study covered a full decade of field data.",
      "Cases of dengue surged in august 2003 across the river villages. "
      "In october 2003 the ministry declared the epidemic over.",
      "The city council debated the new harbor bridge for hours.",
  };
  std::vector<Document> docs;
  for (size_t i = 0; i < std::size(articles); ++i) {
    docs.push_back(
        TextToDocument(static_cast<DocId>(i), articles[i], *vocab));
  }

  // 2) Compose a custom extraction system from library parts.
  std::vector<std::unique_ptr<EntityRecognizer>> recognizers;
  recognizers.push_back(std::make_unique<GazetteerNer>(
      EntityType::kDisease,
      std::vector<std::string>{"cholera", "malaria", "dengue", "ebola"},
      vocab.get()));
  recognizers.push_back(std::make_unique<TemporalNer>(vocab.get()));
  auto relation_extractor =
      std::make_unique<DistanceRelationExtractor>(/*max_distance=*/4);

  const ExtractionSystem system(GetRelation(RelationId::kDiseaseOutbreak),
                                std::move(recognizers),
                                std::move(relation_extractor));

  // 3) Extract. Document 0 and 2 should yield tuples; document 1 mentions
  // a disease with no nearby temporal expression; document 3 is useless.
  for (const Document& doc : docs) {
    const auto tuples = system.Process(doc);
    std::printf("document %u: %s\n", doc.id,
                tuples.empty() ? "useless" : "USEFUL");
    for (const ExtractedTuple& t : tuples) {
      std::printf("  <%s, %s> (sentence %u)\n", t.attr1.c_str(),
                  t.attr2.c_str(), t.sentence);
    }
  }

  std::printf(
      "\nAny system exposing Process(doc) -> tuples can drive the adaptive\n"
      "ranking pipeline; see quickstart.cpp for the ranking side.\n");
  return 0;
}
