// Quickstart: the 60-second tour.
//
// Generates a small synthetic news corpus, trains the Person-Charge
// extraction system, and compares three ways of ordering the extraction:
// random, RSVM-IE (base), and adaptive RSVM-IE with Mod-C update detection
// — then prints how much of the collection each needs to process to find
// 80% of the useful documents.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "corpus/generator.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "extract/extraction_system.h"
#include "pipeline/pipeline.h"

using namespace ie;

int main() {
  // 1) A document collection (substitute your own corpus here).
  GeneratorOptions corpus_options;
  corpus_options.num_documents = 6000;
  corpus_options.seed = 7;
  Corpus corpus = GenerateCorpus(corpus_options);
  std::printf("corpus: %zu documents, vocabulary %zu terms\n",
              corpus.size(), corpus.vocab().size());

  // 2) A trained, black-box information extraction system.
  const RelationId relation = RelationId::kPersonCharge;
  auto system = TrainExtractionSystem(relation, corpus.shared_vocab());
  const ExtractionOutcomes outcomes =
      ExtractionOutcomes::Compute(*system, corpus);
  const auto& pool = corpus.splits().test;
  std::printf("%s: %zu of %zu test documents are useful (%.2f%%)\n",
              GetRelation(relation).name.c_str(),
              outcomes.CountUseful(pool), pool.size(),
              100.0 * outcomes.CountUseful(pool) / pool.size());

  // 3) Shared featurization for the ranking models.
  Featurizer featurizer(&corpus.vocab());
  const std::vector<SparseVector> word_features =
      FeaturizePool(corpus, featurizer);

  SharedContext context;
  context.corpus = &corpus;
  context.pool = &pool;
  context.outcomes = &outcomes;
  context.relation = &GetRelation(relation);
  context.featurizer = &featurizer;
  context.word_features = &word_features;

  // 4) Run three ranking strategies and compare.
  std::printf("\n%-28s %22s %10s\n", "strategy",
              "docs to reach 80% recall", "AUC");
  for (const auto& [ranker, update, label] :
       std::vector<std::tuple<RankerKind, UpdateKind, const char*>>{
           {RankerKind::kRandom, UpdateKind::kNone, "random order"},
           {RankerKind::kRSVMIE, UpdateKind::kNone, "RSVM-IE (base)"},
           {RankerKind::kRSVMIE, UpdateKind::kModC,
            "RSVM-IE + Mod-C (adaptive)"}}) {
    PipelineConfig config =
        PipelineConfig::Defaults(ranker, SamplerKind::kSRS, update, 1);
    config.sample_size = 150;
    const PipelineResult result =
        AdaptiveExtractionPipeline::Run(context, config);
    const RunMetrics metrics = EvaluateRun(result);
    const size_t docs = DocsToReachRecall(result.processed_useful,
                                          result.pool_useful, 0.8);
    std::printf("%-28s %14zu (%4.1f%%) %9.1f%%\n", label, docs,
                100.0 * static_cast<double>(docs) /
                    static_cast<double>(pool.size()),
                100.0 * metrics.auc);
  }
  std::printf(
      "\nAdaptive ranking finds the useful documents early: that is the\n"
      "paper's headline result. See bench/ for the full reproduction.\n");
  return 0;
}
