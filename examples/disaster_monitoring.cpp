// Disaster monitoring: the paper's motivating workload.
//
// Extracting Occurs-in(NaturalDisaster, Location) tuples is slow (~6 s per
// document with the paper's extractor), so processing order decides whether
// the job takes days or weeks. This example runs the full adaptive pipeline
// on the Natural Disaster-Location relation, prints sample extracted
// tuples, shows where the model updates fired, and converts the ranking
// advantage into (simulated) CPU-days saved.
//
// Build & run:  ./build/examples/disaster_monitoring
#include <cstdio>

#include "corpus/generator.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "extract/extraction_system.h"
#include "pipeline/pipeline.h"

using namespace ie;

int main() {
  GeneratorOptions corpus_options;
  corpus_options.num_documents = 6000;
  corpus_options.seed = 21;
  Corpus corpus = GenerateCorpus(corpus_options);

  const RelationId relation = RelationId::kNaturalDisaster;
  auto system = TrainExtractionSystem(relation, corpus.shared_vocab());
  const ExtractionOutcomes outcomes =
      ExtractionOutcomes::Compute(*system, corpus);

  // Show a few extracted tuples: this is the structured output a downstream
  // user actually wants.
  std::printf("sample Occurs-in tuples:\n");
  size_t shown = 0;
  for (DocId id = 0; id < corpus.size() && shown < 5; ++id) {
    for (const ExtractedTuple& t : outcomes.tuples(id)) {
      std::printf("  doc %-6u <%s, %s>\n", id, t.attr1.c_str(),
                  t.attr2.c_str());
      if (++shown >= 5) break;
    }
  }

  const auto& pool = corpus.splits().test;
  Featurizer featurizer(&corpus.vocab());
  const std::vector<SparseVector> word_features =
      FeaturizePool(corpus, featurizer);

  SharedContext context;
  context.corpus = &corpus;
  context.pool = &pool;
  context.outcomes = &outcomes;
  context.relation = &GetRelation(relation);
  context.featurizer = &featurizer;
  context.word_features = &word_features;

  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, 5);
  config.sample_size = 150;
  const PipelineResult adaptive =
      AdaptiveExtractionPipeline::Run(context, config);

  PipelineConfig random_config = PipelineConfig::Defaults(
      RankerKind::kRandom, SamplerKind::kSRS, UpdateKind::kNone, 5);
  random_config.sample_size = 150;
  const PipelineResult random =
      AdaptiveExtractionPipeline::Run(context, random_config);

  std::printf("\npool: %zu documents, %zu useful; extractor cost %.0f s/doc\n",
              pool.size(), adaptive.pool_useful,
              GetRelation(relation).extraction_cost_seconds);
  std::printf("model updates fired after processing:");
  for (size_t pos : adaptive.update_positions) std::printf(" %zu", pos);
  std::printf("\n\n%-12s %-24s %-24s\n", "recall", "adaptive RSVM-IE",
              "random order");
  for (double target : {0.5, 0.8, 0.95}) {
    const size_t docs_a = DocsToReachRecall(adaptive.processed_useful,
                                            adaptive.pool_useful, target);
    const size_t docs_r = DocsToReachRecall(random.processed_useful,
                                            random.pool_useful, target);
    const double cost = GetRelation(relation).extraction_cost_seconds;
    std::printf("%5.0f%%       %8zu docs (%5.1f h)  %8zu docs (%5.1f h)\n",
                100.0 * target, docs_a, docs_a * cost / 3600.0, docs_r,
                docs_r * cost / 3600.0);
  }
  std::printf(
      "\nThe adaptive ranking reaches high recall after a fraction of the\n"
      "extraction effort — on the paper's 1M-document collections this is\n"
      "the difference between days and months of CPU time.\n");
  return 0;
}
