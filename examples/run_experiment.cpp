// Configurable experiment runner: reproduce any pipeline configuration
// from the command line, including the paper's future-work recall
// estimation and tuple-diversity characterization.
//
// Usage:
//   run_experiment [relation=PH] [ranker=rsvm|bagg|random|perfect]
//                  [sampler=srs] [update=none|windf|feats|topk|modc]
//                  [docs=8000] [seeds=2] [access=full|search]
// e.g.
//   ./build/examples/run_experiment relation=ND ranker=rsvm update=modc
#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "corpus/generator.h"
#include "eval/diversity.h"
#include "eval/experiment.h"
#include "eval/recall_estimator.h"
#include "extract/extraction_system.h"
#include "pipeline/pipeline.h"

using namespace ie;

namespace {

std::map<std::string, std::string> ParseArgs(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i < argc; ++i) {
    const char* eq = std::strchr(argv[i], '=');
    if (eq == nullptr) continue;
    args[std::string(argv[i], static_cast<size_t>(eq - argv[i]))] =
        std::string(eq + 1);
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = ParseArgs(argc, argv);
  auto get = [&](const char* key, const std::string& fallback) {
    const auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };

  const RelationSpec* spec = FindRelationByCode(get("relation", "PH"));
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "unknown relation code (use PO DO PC ND MD PH EW)\n");
    return 1;
  }
  const std::string ranker_name = get("ranker", "rsvm");
  const std::string update_name = get("update", "modc");
  const size_t num_docs = std::stoul(get("docs", "8000"));
  const size_t seeds = std::stoul(get("seeds", "2"));

  const RankerKind ranker = ranker_name == "bagg"      ? RankerKind::kBAggIE
                            : ranker_name == "random"  ? RankerKind::kRandom
                            : ranker_name == "perfect" ? RankerKind::kPerfect
                                                       : RankerKind::kRSVMIE;
  const UpdateKind update = update_name == "none"    ? UpdateKind::kNone
                            : update_name == "windf" ? UpdateKind::kWindF
                            : update_name == "feats" ? UpdateKind::kFeatS
                            : update_name == "topk"  ? UpdateKind::kTopK
                                                     : UpdateKind::kModC;

  std::fprintf(stderr, "building world (%zu docs)...\n", num_docs);
  GeneratorOptions corpus_options;
  corpus_options.num_documents = num_docs;
  corpus_options.seed = 42;
  Corpus corpus = GenerateCorpus(corpus_options);
  auto system = TrainExtractionSystem(spec->id, corpus.shared_vocab());
  const ExtractionOutcomes outcomes =
      ExtractionOutcomes::Compute(*system, corpus);
  const auto& pool = corpus.splits().test;
  Featurizer featurizer(&corpus.vocab());
  const std::vector<SparseVector> word_features =
      FeaturizePool(corpus, featurizer);
  const InvertedIndex index = BuildPoolIndex(corpus, pool);

  SharedContext context;
  context.corpus = &corpus;
  context.pool = &pool;
  context.outcomes = &outcomes;
  context.relation = spec;
  context.featurizer = &featurizer;
  context.word_features = &word_features;
  context.index = &index;

  PipelineResult last_result;
  const AggregateMetrics agg = RunExperiment(
      spec->code + " " + ranker_name + "+" + update_name, seeds,
      [&](size_t run) {
        PipelineConfig config = PipelineConfig::Defaults(
            ranker, SamplerKind::kSRS, update, 1000 + run);
        config.sample_size = std::max<size_t>(150, pool.size() * 6 / 100);
        if (get("access", "full") == "search") {
          config.access = AccessMode::kSearchInterface;
        }
        last_result = AdaptiveExtractionPipeline::Run(context, config);
        return last_result;
      });

  std::printf("\n%s — %s, update=%s, %zu docs, %zu seeds\n",
              spec->name.c_str(), ranker_name.c_str(), update_name.c_str(),
              num_docs, seeds);
  std::printf("%-28s", "processed %:");
  for (int p = 10; p <= 100; p += 10) std::printf(" %6d", p);
  std::printf("\n");
  PrintCurveWithUpdates(agg);
  PrintApAucRow(agg);

  // Future-work extensions on the last run: recall estimate at the point
  // where 30% of the pool was processed, plus tuple-diversity index.
  const size_t cut = last_result.processing_order.size() * 3 / 10;
  std::vector<double> processed_scores, remaining_scores;
  std::vector<bool> processed_labels;
  for (size_t i = 0; i < last_result.processing_order.size(); ++i) {
    // Proxy score: position rank (descending), since per-doc model scores
    // at processing time are internal; calibration only needs monotone
    // scores.
    const double score =
        -static_cast<double>(i) /
        static_cast<double>(last_result.processing_order.size());
    if (i < cut) {
      processed_scores.push_back(score);
      processed_labels.push_back(last_result.processed_useful[i] != 0);
    } else {
      remaining_scores.push_back(score);
    }
  }
  const RecallEstimate estimate = EstimateRecall(
      processed_scores, processed_labels, remaining_scores);
  const double true_recall =
      last_result.pool_useful > 0
          ? static_cast<double>(estimate.found) /
                static_cast<double>(last_result.pool_useful)
          : 0.0;
  std::printf(
      "\nrecall estimation after 30%% processed: estimated %.1f%% "
      "(true %.1f%%)\n",
      100.0 * estimate.estimated_recall, 100.0 * true_recall);
  std::printf("early tuple-diversity index: %.3f (1.0 = all distinct "
              "tuples found immediately)\n",
              EarlyDiversityIndex(last_result.processing_order, outcomes));
  return 0;
}
