// Search-interface access: extraction through a keyword search API.
//
// When a collection can only be reached through a search interface (the
// paper's "more realistic" scenario), the pipeline retrieves an initial
// candidate pool with sample-learned queries, and after every model update
// turns the refreshed model's top features into new queries to grow the
// pool. This example shows the query lifecycle: the initial learned
// queries, the pool growth, and the recall achieved before falling back to
// unretrieved documents.
//
// Build & run:  ./build/examples/search_interface_extraction
#include <cstdio>

#include "corpus/generator.h"
#include "eval/experiment.h"
#include "extract/extraction_system.h"
#include "pipeline/pipeline.h"
#include "sampling/sampler.h"
#include "ranking/query_learning.h"

using namespace ie;

int main() {
  GeneratorOptions corpus_options;
  corpus_options.num_documents = 9000;
  corpus_options.seed = 33;
  Corpus corpus = GenerateCorpus(corpus_options);

  const RelationId relation = RelationId::kPersonCharge;
  auto system = TrainExtractionSystem(relation, corpus.shared_vocab());
  const ExtractionOutcomes outcomes =
      ExtractionOutcomes::Compute(*system, corpus);

  const auto& pool = corpus.splits().test;
  Featurizer featurizer(&corpus.vocab());
  const std::vector<SparseVector> word_features =
      FeaturizePool(corpus, featurizer);
  const InvertedIndex index = BuildPoolIndex(corpus, pool);

  // Peek at what QXtract-style query learning discovers from a labeled
  // sample (the same mechanism the pipeline uses internally).
  {
    Rng rng(3);
    SrsSampler sampler;
    std::vector<LabeledExample> sample;
    for (DocId id : sampler.Sample(pool, 450, &rng)) {
      sample.push_back({word_features[id], outcomes.useful(id) ? 1 : -1});
    }
    std::printf("initial QXtract-style queries:");
    for (const std::string& q :
         LearnQueries(sample, corpus.vocab(), QueryMethod::kSvmWeights, 8)) {
      std::printf(" [%s]", q.c_str());
    }
    std::printf("\n");
  }

  SharedContext context;
  context.corpus = &corpus;
  context.pool = &pool;
  context.outcomes = &outcomes;
  context.relation = &GetRelation(relation);
  context.featurizer = &featurizer;
  context.word_features = &word_features;
  context.index = &index;

  PipelineConfig config = PipelineConfig::Defaults(
      RankerKind::kRSVMIE, SamplerKind::kSRS, UpdateKind::kModC, 11);
  config.sample_size = 450;
  config.access = AccessMode::kSearchInterface;
  const PipelineResult result =
      AdaptiveExtractionPipeline::Run(context, config);
  const RunMetrics metrics = EvaluateRun(result);

  std::printf("\npool %zu docs, %zu useful; %zu model updates\n",
              pool.size(), result.pool_useful, result.NumUpdates());
  std::printf("recall through the search interface:\n");
  const size_t points = metrics.recall_curve.size() - 1;
  for (int pct = 10; pct <= 100; pct += 10) {
    std::printf("  %3d%% processed -> %5.1f%% recall\n", pct,
                100.0 * metrics.recall_curve[pct * points / 100]);
  }
  std::printf(
      "\nEvery update turned the model's top features into fresh keyword\n"
      "queries, pulling newly discovered subtopics (e.g. rare crime\n"
      "categories) into the candidate pool before the exhaustive fallback.\n");
  return 0;
}
